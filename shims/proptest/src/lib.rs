//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate: the strategy combinators and macros this workspace's property
//! tests use, with deterministic ChaCha-seeded sampling.
//!
//! Differences from real proptest, deliberately accepted for a vendored
//! test-only shim:
//!
//! * **no shrinking** — a failing case reports its seed and case number
//!   instead of a minimised input;
//! * **fixed case count** (`PROPTEST_CASES` env var, default 64);
//! * strategies sample directly (no intermediate `ValueTree`).

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and adapters.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match real proptest's default: None about a quarter of the
            // time.
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some` values from `inner` (75%) or `None` (25%).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod test_runner {
    //! Deterministic case execution for [`crate::proptest!`].

    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs: skip, don't fail.
        Reject(String),
        /// `prop_assert!` (or friends) failed.
        Fail(String),
    }

    /// Runs the numbered cases of one property.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        /// Number of cases to run.
        pub cases: u32,
        /// Base seed; each case derives its own stream.
        pub seed: u64,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            TestRunner {
                cases,
                seed: 0x0071_u64 ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl TestRunner {
        /// The RNG for one case: deterministic in `(seed, case)`.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::seed_from_u64(
                self.seed
                    .wrapping_add(u64::from(case).wrapping_mul(0x5851_F42D_4C95_7F2D)),
            )
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module alias used by `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Shrinking is not implemented: failures report the case number.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __runner = $crate::test_runner::TestRunner::default();
                for __case in 0..__runner.cases {
                    let mut __rng = __runner.rng_for(__case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case {}/{} failed: {}",
                                __case + 1,
                                __runner.cases,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(concat!("{:?} != {:?}: ", ""), __l, __r) + &format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: both sides equal `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l != __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("both sides equal {:?}: ", __l) + &format!($($fmt)+),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in prop::collection::vec(0u8..5, 1..9)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19);
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(any::<u64>())) {
            // Either branch is fine; just exercise the strategy.
            let _ = o;
            prop_assert!(true);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let runner = crate::test_runner::TestRunner::default();
        let mut a = runner.rng_for(5);
        let mut b = runner.rng_for(5);
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
