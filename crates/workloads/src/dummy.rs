//! Synthetic workloads for the scalability and false-positive experiments.
//!
//! [`DummySbox`] is the paper's Fig. 5 dummy program: every thread performs
//! one random (data-driven) access into a fixed 256-entry table, so the set
//! of *distinct* accessed addresses saturates as the thread count grows —
//! the trace-size plateau that demonstrates Owl's warp aggregation.
//!
//! [`NoiseDummy`] is a program whose accesses vary run-to-run independently
//! of the input (a randomised defence, the paper's "non-deterministic
//! factors"): Owl must *not* flag it.
//!
//! [`RunawaySpin`] is the resource-governance demo: every run spins an
//! unbounded device loop, so each launch burns the full instruction budget
//! and fails with `FuelExhausted`. Under a small `--max-instructions` the
//! detector quarantines every run quickly and reports
//! `Verdict::Inconclusive`; under the default multi-billion fuel it is
//! effectively a hang reproducer.

use crate::util::{rng, seeded_bytes};
use owl_core::TracedProgram;
use owl_gpu::build::KernelBuilder;
use owl_gpu::grid::LaunchConfig;
use owl_gpu::isa::{CmpOp, MemWidth, SpecialReg};
use owl_gpu::KernelProgram;
use owl_host::{Device, HostError};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Entries in the S-box-like table.
pub const TABLE_ENTRIES: usize = 256;

fn build_sbox_kernel() -> KernelProgram {
    let b = KernelBuilder::new("dummy_sbox");
    let data = b.param(0);
    let table = b.param(1);
    let out = b.param(2);
    let n = b.param(3);
    let tid = b.special(SpecialReg::GlobalTid);
    let guard = b.setp(CmpOp::LtU, tid, n);
    b.if_then(guard, |b| {
        let idx = b.load_global(b.add(data, tid), MemWidth::B1);
        let v = b.load_global(b.add(table, b.mul(idx, 4u64)), MemWidth::B4);
        b.store_global(b.add(out, b.mul(tid, 4u64)), v, MemWidth::B4);
    });
    b.finish()
}

fn build_hash_sbox_kernel() -> KernelProgram {
    let b = KernelBuilder::new("dummy_sbox");
    let secret = b.param(0);
    let table = b.param(1);
    let out = b.param(2);
    let n = b.param(3);
    let tid = b.special(SpecialReg::GlobalTid);
    let guard = b.setp(CmpOp::LtU, tid, n);
    b.if_then(guard, |b| {
        // Per-thread pseudo-random table index derived from the secret and
        // the thread id, computed in registers (like an AES state byte).
        let mix = b.mul(secret, b.add(b.mul(tid, 2654435761u64), 1u64));
        let idx = b.and(b.shr(mix, 24u64), 0xff_u64);
        let v = b.load_global(b.add(table, b.mul(idx, 4u64)), MemWidth::B4);
        // Bounded output region: the store addresses do not grow with the
        // thread count.
        let slot = b.and(tid, 63u64);
        b.store_global(b.add(out, b.mul(slot, 4u64)), v, MemWidth::B4);
    });
    b.finish()
}

/// The Fig. 5 dummy program: one secret-derived table lookup per thread,
/// with the thread count scaling with the input size.
#[derive(Debug, Clone)]
pub struct DummySbox {
    kernel: KernelProgram,
    elems: usize,
}

impl DummySbox {
    /// A dummy program with `elems` threads.
    pub fn new(elems: usize) -> Self {
        assert!(elems > 0, "at least one element");
        DummySbox {
            kernel: build_hash_sbox_kernel(),
            elems,
        }
    }

    /// Input size (= thread count).
    pub fn elems(&self) -> usize {
        self.elems
    }
}

impl TracedProgram for DummySbox {
    type Input = u64;

    fn name(&self) -> &str {
        "dummy-sbox"
    }

    fn run(&self, device: &mut Device, secret: &u64) -> Result<(), HostError> {
        let table = device.malloc(TABLE_ENTRIES * 4);
        let table_bytes: Vec<u8> = (0..TABLE_ENTRIES as u32)
            .flat_map(|i| (i.wrapping_mul(2654435761)).to_le_bytes())
            .collect();
        device.memcpy_h2d(table, &table_bytes)?;
        let out = device.malloc(64 * 4);
        device.launch(
            &self.kernel,
            LaunchConfig::new((self.elems as u32).div_ceil(256), 256u32),
            &[*secret, table.addr(), out.addr(), self.elems as u64],
        )?;
        Ok(())
    }

    fn random_input(&self, seed: u64) -> u64 {
        u64::from_le_bytes(
            seeded_bytes(seed ^ 0xD0_5B0C, 8)
                .try_into()
                .expect("8 bytes"),
        ) | 1
    }

    fn deterministic_host(&self) -> bool {
        true // audited: `run` has no per-run host state
    }
}

/// A program whose memory behaviour is random per *run*, not per input:
/// the host draws a fresh nonce each execution and indexes the table with
/// it. The fixed-input and random-input distributions coincide, so Owl's
/// distribution test must attribute the differences to noise.
#[derive(Debug)]
pub struct NoiseDummy {
    kernel: KernelProgram,
    // Atomic (not `Cell`) so the workload is `Sync`: the parallel detector
    // records runs from several threads, and the nonce must keep advancing
    // per run regardless of which thread executes it.
    nonce: AtomicU64,
}

impl NoiseDummy {
    /// A fresh noise program.
    pub fn new() -> Self {
        NoiseDummy {
            kernel: build_sbox_kernel(),
            nonce: AtomicU64::new(0x009a_3c01),
        }
    }
}

impl Default for NoiseDummy {
    fn default() -> Self {
        Self::new()
    }
}

impl TracedProgram for NoiseDummy {
    type Input = u64;

    fn name(&self) -> &str {
        "noise-dummy"
    }

    fn run(&self, device: &mut Device, _input: &u64) -> Result<(), HostError> {
        // Fresh per-run randomness regardless of the input (e.g. a
        // randomised masking defence).
        let n = self.nonce.fetch_add(1, Ordering::Relaxed);
        let mut r = rng(n);
        let draw: Vec<u8> = (0..32).map(|_| r.gen()).collect();

        let data = device.malloc(32);
        device.memcpy_h2d(data, &draw)?;
        let table = device.malloc(TABLE_ENTRIES * 4);
        let out = device.malloc(32 * 4);
        device.launch(
            &self.kernel,
            LaunchConfig::new(1u32, 32u32),
            &[data.addr(), table.addr(), out.addr(), 32],
        )?;
        Ok(())
    }

    fn random_input(&self, seed: u64) -> u64 {
        seed
    }

    /// The per-run nonce makes `run` impure: fixed-input runs differ, and
    /// the detector must re-record each one so the noise reaches both
    /// evidence sets and is dismissed as input-independent.
    fn deterministic_host(&self) -> bool {
        false
    }
}

fn build_spin_kernel() -> KernelProgram {
    let b = KernelBuilder::new("runaway_spin");
    let one = b.mov(1u64);
    b.while_loop(
        |b| b.setp(CmpOp::Eq, one, 1u64),
        |b| {
            let _ = b.add(one, 0u64);
        },
    );
    b.finish()
}

/// A program whose kernel never terminates: an unbounded `while (1)` spin.
///
/// Exists to exercise the resource budgets end to end — there is no leak to
/// find; every run exhausts its instruction budget and is quarantined.
#[derive(Debug, Clone)]
pub struct RunawaySpin {
    kernel: KernelProgram,
}

impl RunawaySpin {
    /// A fresh runaway program.
    pub fn new() -> Self {
        RunawaySpin {
            kernel: build_spin_kernel(),
        }
    }
}

impl Default for RunawaySpin {
    fn default() -> Self {
        Self::new()
    }
}

impl TracedProgram for RunawaySpin {
    type Input = u64;

    fn name(&self) -> &str {
        "runaway-spin"
    }

    fn run(&self, device: &mut Device, _input: &u64) -> Result<(), HostError> {
        device.launch(&self.kernel, LaunchConfig::new(1u32, 32u32), &[])?;
        Ok(())
    }

    fn random_input(&self, seed: u64) -> u64 {
        seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_core::record_trace;

    #[test]
    fn dummy_runs_and_scales_threads() {
        for elems in [32usize, 256, 1024] {
            let d = DummySbox::new(elems);
            let input = d.random_input(1);
            let mut dev = Device::new();
            d.run(&mut dev, &input).unwrap();
            // 256-thread CTAs → 8 warps per CTA.
            assert_eq!(
                dev.total_stats().warps,
                (elems as u64).div_ceil(256) * 8,
                "elems {elems}"
            );
        }
    }

    #[test]
    fn trace_size_saturates_with_thread_count() {
        // The Fig. 5 plateau: past the table size, more threads stop adding
        // distinct addresses, so trace size flattens while thread count
        // keeps growing.
        let sizes: Vec<usize> = [64usize, 256, 1024, 4096]
            .into_iter()
            .map(|elems| {
                let d = DummySbox::new(elems);
                let input = d.random_input(7);
                record_trace(&d, &input).unwrap().size_bytes()
            })
            .collect();
        let small_growth = sizes[1] as f64 / sizes[0] as f64;
        let large_growth = sizes[3] as f64 / sizes[2] as f64;
        assert!(small_growth > 1.5, "early growth expected: {sizes:?}");
        assert!(
            large_growth < small_growth / 1.2,
            "growth must slow down: {sizes:?}"
        );
    }

    #[test]
    fn noise_dummy_traces_differ_across_runs_with_same_input() {
        let d = NoiseDummy::new();
        let a = record_trace(&d, &0).unwrap();
        let b = record_trace(&d, &0).unwrap();
        assert_ne!(a, b, "per-run nonce must vary the trace");
    }
}
