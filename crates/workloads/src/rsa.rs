//! RSA modular-exponentiation workloads (the second Libgpucrypto target).
//!
//! The paper finds control-flow leaks in RSA's `if`/`else` branches: the
//! textbook square-and-multiply loop multiplies only when the current
//! private-exponent bit is set, and iterates once per exponent bit — both
//! directly visible in a warp-level control-flow trace because the key is
//! shared across threads. [`RsaSquareMultiply`] reproduces that pattern;
//! [`RsaLadder`] is the constant-flow Montgomery-ladder counterpart used as
//! a negative control.
//!
//! The arithmetic runs on 32-bit moduli (products fit the simulator's
//! 64-bit registers); the leakage mechanics are identical to a bignum
//! implementation — each limb operation would leak the same branch
//! structure.

use crate::util::rng;
use owl_core::TracedProgram;
use owl_gpu::build::KernelBuilder;
use owl_gpu::grid::LaunchConfig;
use owl_gpu::isa::{CmpOp, MemWidth, SpecialReg};
use owl_gpu::KernelProgram;
use owl_host::{Device, HostError};
use rand::Rng;

/// A fixed 32-bit prime modulus (2³² − 5).
pub const MODULUS: u64 = 4_294_967_291;

/// Host reference: `base^exp mod MODULUS`.
pub fn modpow(mut base: u64, mut exp: u64, n: u64) -> u64 {
    base %= n;
    let mut result = 1u64;
    while exp != 0 {
        if exp & 1 == 1 {
            result = result * base % n;
        }
        base = base * base % n;
        exp >>= 1;
    }
    result
}

/// Builds the leaky square-and-multiply kernel.
fn build_sqm_kernel() -> KernelProgram {
    let b = KernelBuilder::new("rsa_modexp_sqm");
    let msg = b.param(0);
    let out = b.param(1);
    let exp = b.param(2);
    let n = b.param(3);
    let count = b.param(4);
    let tid = b.special(SpecialReg::GlobalTid);
    let in_range = b.setp(CmpOp::LtU, tid, count);
    b.if_then(in_range, |b| {
        let base = b.rem(b.load_global(b.add(msg, b.mul(tid, 8u64)), MemWidth::B8), n);
        let res = b.mov(1u64);
        let e = b.mov(exp);
        b.while_loop(
            // Loop trip count = exponent bit length: a control-flow leak.
            |b| b.setp(CmpOp::Ne, e, 0u64),
            |b| {
                let bit = b.and(e, 1u64);
                let set = b.setp(CmpOp::Eq, bit, 1u64);
                // Multiply only on set bits: the classic leaky branch.
                b.if_then(set, |b| {
                    let m = b.rem(b.mul(res, base), n);
                    b.assign(res, m);
                });
                let sq = b.rem(b.mul(base, base), n);
                b.assign(base, sq);
                b.assign(e, b.shr(e, 1u64));
            },
        );
        b.store_global(b.add(out, b.mul(tid, 8u64)), res, MemWidth::B8);
    });
    b.finish()
}

/// Builds the constant-flow Montgomery-ladder kernel: fixed 32 iterations,
/// branch-free selects.
fn build_ladder_kernel() -> KernelProgram {
    let b = KernelBuilder::new("rsa_modexp_ladder");
    let msg = b.param(0);
    let out = b.param(1);
    let exp = b.param(2);
    let n = b.param(3);
    let count = b.param(4);
    let tid = b.special(SpecialReg::GlobalTid);
    let in_range = b.setp(CmpOp::LtU, tid, count);
    b.if_then(in_range, |b| {
        let base = b.rem(b.load_global(b.add(msg, b.mul(tid, 8u64)), MemWidth::B8), n);
        let r0 = b.mov(1u64);
        let r1 = b.mov(base);
        b.for_range(0u64, 32u64, |b, i| {
            let shift = b.sub(31u64, i);
            let bit = b.and(b.shr(exp, shift), 1u64);
            let is_zero = b.setp(CmpOp::Eq, bit, 0u64);
            let t00 = b.rem(b.mul(r0, r0), n);
            let t01 = b.rem(b.mul(r0, r1), n);
            let t11 = b.rem(b.mul(r1, r1), n);
            // bit == 0: (r0, r1) ← (r0², r0·r1); bit == 1: (r0·r1, r1²).
            let n0 = b.sel(is_zero, t00, t01);
            let n1 = b.sel(is_zero, t01, t11);
            b.assign(r0, n0);
            b.assign(r1, n1);
        });
        b.store_global(b.add(out, b.mul(tid, 8u64)), r0, MemWidth::B8);
    });
    b.finish()
}

/// Shared host driver.
#[derive(Debug, Clone)]
struct RsaWorkload {
    kernel: KernelProgram,
    /// Fixed public message bases, one per thread.
    messages: Vec<u64>,
}

impl RsaWorkload {
    fn new(kernel: KernelProgram, threads: u32) -> Self {
        let mut r = rng(0x45A);
        RsaWorkload {
            kernel,
            messages: (0..threads).map(|_| r.gen_range(2..MODULUS)).collect(),
        }
    }

    fn modexp(&self, dev: &mut Device, exponent: u64) -> Result<Vec<u64>, HostError> {
        let n = self.messages.len();
        let msg = dev.malloc(8 * n);
        let bytes: Vec<u8> = self.messages.iter().flat_map(|v| v.to_le_bytes()).collect();
        dev.memcpy_h2d(msg, &bytes)?;
        let out = dev.malloc(8 * n);
        dev.launch(
            &self.kernel,
            LaunchConfig::new((n as u32).div_ceil(32), 32u32),
            &[msg.addr(), out.addr(), exponent, MODULUS, n as u64],
        )?;
        let mut raw = vec![0u8; 8 * n];
        dev.memcpy_d2h(out, &mut raw)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
}

/// Draw a random 32-bit private exponent (the secret).
fn random_exponent(seed: u64) -> u64 {
    rng(seed ^ 0x125A).gen_range(1u64..(1 << 32))
}

/// The textbook square-and-multiply RSA modexp — leaky control flow.
#[derive(Debug, Clone)]
pub struct RsaSquareMultiply(RsaWorkload);

impl RsaSquareMultiply {
    /// Modexp over `threads` message bases with a shared secret exponent.
    pub fn new(threads: u32) -> Self {
        RsaSquareMultiply(RsaWorkload::new(build_sqm_kernel(), threads))
    }

    /// Runs the exponentiation and returns the per-thread results.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn modexp(&self, dev: &mut Device, exponent: u64) -> Result<Vec<u64>, HostError> {
        self.0.modexp(dev, exponent)
    }

    /// The fixed public message bases.
    pub fn messages(&self) -> &[u64] {
        &self.0.messages
    }
}

impl TracedProgram for RsaSquareMultiply {
    type Input = u64;

    fn name(&self) -> &str {
        "libgpucrypto/rsa-square-multiply"
    }

    fn run(&self, device: &mut Device, exponent: &u64) -> Result<(), HostError> {
        self.0.modexp(device, *exponent).map(|_| ())
    }

    fn random_input(&self, seed: u64) -> u64 {
        random_exponent(seed)
    }

    fn deterministic_host(&self) -> bool {
        true // audited: `run` has no per-run host state
    }
}

/// The constant-flow Montgomery-ladder modexp — the negative control.
#[derive(Debug, Clone)]
pub struct RsaLadder(RsaWorkload);

impl RsaLadder {
    /// Modexp over `threads` message bases with a shared secret exponent.
    pub fn new(threads: u32) -> Self {
        RsaLadder(RsaWorkload::new(build_ladder_kernel(), threads))
    }

    /// Runs the exponentiation and returns the per-thread results.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn modexp(&self, dev: &mut Device, exponent: u64) -> Result<Vec<u64>, HostError> {
        self.0.modexp(dev, exponent)
    }
}

impl TracedProgram for RsaLadder {
    type Input = u64;

    fn name(&self) -> &str {
        "libgpucrypto/rsa-montgomery-ladder"
    }

    fn run(&self, device: &mut Device, exponent: &u64) -> Result<(), HostError> {
        self.0.modexp(device, *exponent).map(|_| ())
    }

    fn random_input(&self, seed: u64) -> u64 {
        random_exponent(seed)
    }

    fn deterministic_host(&self) -> bool {
        true // audited: `run` has no per-run host state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modpow_reference_basics() {
        assert_eq!(modpow(2, 10, MODULUS), 1024);
        assert_eq!(modpow(5, 0, MODULUS), 1);
        assert_eq!(modpow(0, 5, MODULUS), 0);
        // Fermat: a^(p-1) ≡ 1 mod p for prime p.
        assert_eq!(modpow(1234_5678, MODULUS - 1, MODULUS), 1);
    }

    #[test]
    fn sqm_kernel_matches_reference() {
        let rsa = RsaSquareMultiply::new(32);
        for exp in [1u64, 2, 0x8000_0001, 0xdead_beef, (1 << 32) - 1] {
            let mut dev = Device::new();
            let got = rsa.modexp(&mut dev, exp).unwrap();
            for (i, &m) in rsa.messages().iter().enumerate() {
                assert_eq!(got[i], modpow(m, exp, MODULUS), "exp {exp:#x} thread {i}");
            }
        }
    }

    #[test]
    fn ladder_kernel_matches_reference() {
        let rsa = RsaLadder::new(32);
        let sqm = RsaSquareMultiply::new(32);
        for exp in [1u64, 3, 0xffff_fffe, 0x0f0f_0f0f] {
            let mut d1 = Device::new();
            let mut d2 = Device::new();
            assert_eq!(
                rsa.modexp(&mut d1, exp).unwrap(),
                sqm.modexp(&mut d2, exp).unwrap(),
                "exp {exp:#x}"
            );
        }
    }

    #[test]
    fn multi_warp_threads() {
        let rsa = RsaSquareMultiply::new(70);
        let mut dev = Device::new();
        let got = rsa.modexp(&mut dev, 0x1234_5678).unwrap();
        assert_eq!(got.len(), 70);
        assert_eq!(got[69], modpow(rsa.messages()[69], 0x1234_5678, MODULUS));
    }
}
