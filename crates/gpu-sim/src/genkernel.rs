//! Random well-formed kernel generation for differential conformance
//! testing (cuFuzz-style).
//!
//! [`GeneratedKernel::generate`] maps a `u64` seed deterministically to a
//! valid [`KernelProgram`] plus launch geometry, device buffers, constant
//! bank, textures and scalar parameters. Programs cover the full ISA —
//! nested divergence, predication, every memory space, shared-memory bank
//! patterns, bounded (possibly lane-divergent) loops, warp shuffles,
//! ballots, atomics and texture fetches — and occasionally include
//! deliberate faults (wild addresses, division by zero, out-of-range
//! parameters, unbound texture slots, tiny fuel) so that *error* equality
//! between interpreters is fuzzed too.
//!
//! [`diff_case`] is the differential driver: it runs one generated kernel
//! through the production lowered interpreter and through the naive
//! reference oracle ([`crate::oracle`]), and demands bit-identical results
//! (launch outcome, [`LaunchStats`], every hook event in order, and final
//! device memory). [`shrink`] greedily minimises a failing kernel for the
//! regression corpus.
//!
//! The module is self-contained (seed-driven, no external RNG crate) so it
//! can live in `src/` and be reused by unit tests, integration tests and
//! the CI conformance job alike; property-test harnesses drive it by
//! generating seeds.

use serde::{Deserialize, Serialize};

use crate::exec::{launch_with_options, Interpreter, LaunchOptions, LaunchStats};
use crate::grid::LaunchConfig;
use crate::hook::RecordingHook;
use crate::isa::{
    AtomicOp, BinOp, CmpOp, Inst, InstOp, MemSpace, MemWidth, Operand, Pred, Reg, ShflMode,
    SpecialReg, UnOp,
};
use crate::mem::DeviceMemory;
use crate::program::{BasicBlock, BlockId, KernelProgram, Region, Stmt};

/// SplitMix64 — a tiny, deterministic, dependency-free generator. The
/// sequence is part of the corpus format: a persisted seed must keep
/// reproducing the same kernel.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

// Register map (num_regs = 32). The generator writes scratch, address-temp
// and loop-bookkeeping registers only through the roles below, which keeps
// every memory address in bounds by construction (modulo the deliberate
// rare faults).
const SCRATCH: u16 = 0; // r0..r7: random-op values (lane-varying seeds)
const N_SCRATCH: u16 = 8;
const BUF_BASE: u16 = 8; // r8..r11: global buffer base pointers
const LOOP_CTR: u16 = 12; // r12..r15: while-loop counters, one per nest depth
const LOOP_BOUND: u16 = 16; // r16..r19: lane-varying loop bounds
const ADDR_GLOBAL: u16 = 20; // r20..r23: per-space address temporaries
const ADDR_SHARED: u16 = 21;
const ADDR_LOCAL: u16 = 22;
const ADDR_CONST: u16 = 23;
const SCALAR_BASE: u16 = 24; // r24..r27: scalar parameters
const TMP: u16 = 28; // r28..r29: short-lived address arithmetic
const NUM_REGS: u16 = 32;
const NUM_PREDS: u16 = 8; // p0..p3 scratch predicates, p4..p7 loop conds

const SHARED_BYTES: u32 = 256;
const LOCAL_BYTES: u32 = 64;
const CONST_BYTES: u32 = 128;

/// A generated kernel plus everything needed to launch it reproducibly:
/// geometry, buffer sizes, scalar parameters, constant bank and textures.
/// Serialisable so shrunk counterexamples can be persisted as regression
/// corpus files under `tests/corpus/`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedKernel {
    /// The program itself (always passes [`KernelProgram::validate`]).
    pub program: KernelProgram,
    /// Launch geometry.
    pub config: LaunchConfig,
    /// SIMT width for the launch.
    pub warp_size: u32,
    /// Instruction budget (occasionally tiny, to fuzz `FuelExhausted`).
    pub fuel: u64,
    /// Global buffer sizes in bytes (powers of two); parameters `0..n`
    /// receive their base addresses.
    pub buffers: Vec<u64>,
    /// Scalar parameters appended after the buffer bases.
    pub scalars: Vec<u64>,
    /// Texture extents, bound in order to slots `0..n`.
    pub textures: Vec<(u32, u32)>,
    /// Seed for deterministic buffer/constant/texel contents.
    pub init_seed: u64,
}

/// Transient generator state.
struct Gen {
    rng: SplitMix64,
    blocks: Vec<BasicBlock>,
    buffer_sizes: Vec<u64>,
    n_buffers: u16,
    n_scalars: u16,
    n_textures: u16,
    loop_depth: u16,
    /// Hard cap on emitted statements, so programs stay small.
    stmt_budget: u32,
}

impl GeneratedKernel {
    /// Deterministically generates a kernel from `seed`. Equal seeds yield
    /// byte-identical kernels — the conformance suite and the corpus rely
    /// on this.
    pub fn generate(seed: u64) -> GeneratedKernel {
        let mut rng = SplitMix64::new(seed);
        let n_buffers = 2 + rng.below(2) as u16; // 2..=3
        let n_scalars = 2;
        let n_textures = 2;

        let buffer_sizes: Vec<u64> = (0..n_buffers)
            .map(|_| 64u64 << rng.below(4)) // 64..=512 bytes, power of two
            .collect();
        let scalars: Vec<u64> = (0..n_scalars)
            .map(|_| {
                if rng.chance(50) {
                    rng.below(256)
                } else {
                    rng.next_u64()
                }
            })
            .collect();
        let textures = vec![(8, 8), (4, 16)];

        let warp_size = [8u32, 16, 32, 32, 32, 64][rng.below(6) as usize];
        let block_threads = [1u32, 7, 13, 32, 33, 48, 64][rng.below(7) as usize];
        let grid = 1 + rng.below(2) as u32;
        let config = LaunchConfig::new(grid, block_threads);
        // ~2% of kernels run on a shoestring budget to fuzz FuelExhausted
        // equality; everything else gets more than any generated program
        // can consume.
        let fuel = if rng.chance(2) {
            5 + rng.below(60)
        } else {
            1_000_000
        };

        let mut g = Gen {
            rng,
            blocks: Vec::new(),
            buffer_sizes: buffer_sizes.clone(),
            n_buffers,
            n_scalars,
            n_textures,
            loop_depth: 0,
            stmt_budget: 24,
        };

        let mut top = vec![Stmt::Block(g.prologue())];
        g.gen_region_into(&mut top, 0);
        let init_seed = g.rng.next_u64();

        let program = KernelProgram {
            name: format!("fuzz_{seed:016x}"),
            blocks: g.blocks,
            body: Region(top),
            num_regs: NUM_REGS,
            num_preds: NUM_PREDS,
            shared_mem_bytes: SHARED_BYTES,
            local_mem_bytes: LOCAL_BYTES,
        };
        debug_assert!(
            program.validate().is_ok(),
            "generator emitted invalid program"
        );
        GeneratedKernel {
            program,
            config,
            warp_size,
            fuel,
            buffers: buffer_sizes,
            scalars,
            textures,
            init_seed,
        }
    }

    /// Allocates and initialises device state (buffers, constant bank,
    /// textures) and returns the launch argument list: buffer bases
    /// followed by the scalars.
    pub fn setup(&self, mem: &mut DeviceMemory) -> Vec<u64> {
        let mut rng = SplitMix64::new(self.init_seed);
        let mut args = Vec::new();
        for &size in &self.buffers {
            let (_, base) = mem.alloc(size as usize);
            let bytes: Vec<u8> = (0..size).map(|_| rng.next_u64() as u8).collect();
            mem.write_bytes(base, &bytes)
                .expect("freshly allocated buffer must accept its fill");
            args.push(base);
        }
        let cbytes: Vec<u8> = (0..CONST_BYTES).map(|_| rng.next_u64() as u8).collect();
        mem.set_constant(&cbytes);
        for &(w, h) in &self.textures {
            let texels: Vec<u8> = (0..w * h).map(|_| rng.next_u64() as u8).collect();
            mem.bind_texture(w, h, &texels);
        }
        args.extend_from_slice(&self.scalars);
        args
    }

    /// Total number of launch parameters (`buffers` then `scalars`).
    pub fn n_params(&self) -> u16 {
        (self.buffers.len() + self.scalars.len()) as u16
    }
}

impl Gen {
    /// Block 0: loads parameters, seeds the scratch registers with
    /// lane-varying values, initialises the per-space address temporaries
    /// and the lane-varying loop bounds, and gives the scratch predicates
    /// divergent initial values.
    fn prologue(&mut self) -> BlockId {
        let mut insts = Vec::new();
        for i in 0..self.n_buffers {
            insts.push(Inst::new(InstOp::LdParam {
                dst: Reg(BUF_BASE + i),
                index: i,
            }));
        }
        for j in 0..self.n_scalars {
            insts.push(Inst::new(InstOp::LdParam {
                dst: Reg(SCALAR_BASE + j),
                index: self.n_buffers + j,
            }));
        }
        let specials = [
            SpecialReg::GlobalTid,
            SpecialReg::LaneId,
            SpecialReg::TidX,
            SpecialReg::WarpId,
        ];
        for (i, sr) in specials.iter().enumerate() {
            insts.push(Inst::new(InstOp::Special {
                dst: Reg(SCRATCH + i as u16),
                sr: *sr,
            }));
        }
        for i in 4..N_SCRATCH {
            insts.push(Inst::new(InstOp::Mov {
                dst: Reg(SCRATCH + i),
                src: Operand::Imm(self.rng.next_u64()),
            }));
        }
        // Lane-varying loop bounds r16..r19 (small: trip counts stay tiny).
        for (i, mask) in [3u64, 3, 1, 7].iter().enumerate() {
            insts.push(Inst::new(InstOp::Bin {
                op: BinOp::And,
                dst: Reg(LOOP_BOUND + i as u16),
                a: Operand::Reg(Reg(SCRATCH + (i as u16 % 2))),
                b: Operand::Imm(*mask),
            }));
        }
        // Address temporaries start at a valid address of their space.
        insts.push(Inst::new(InstOp::Mov {
            dst: Reg(ADDR_GLOBAL),
            src: Operand::Reg(Reg(BUF_BASE)),
        }));
        for r in [ADDR_SHARED, ADDR_LOCAL, ADDR_CONST] {
            insts.push(Inst::new(InstOp::Mov {
                dst: Reg(r),
                src: Operand::Imm(0),
            }));
        }
        // Divergent scratch predicates.
        insts.push(Inst::new(InstOp::SetP {
            pred: Pred(0),
            op: CmpOp::LtU,
            a: Operand::Reg(Reg(SCRATCH + 1)),
            b: Operand::Imm(16),
        }));
        insts.push(Inst::new(InstOp::Bin {
            op: BinOp::And,
            dst: Reg(TMP),
            a: Operand::Reg(Reg(SCRATCH)),
            b: Operand::Imm(1),
        }));
        insts.push(Inst::new(InstOp::SetP {
            pred: Pred(1),
            op: CmpOp::Eq,
            a: Operand::Reg(Reg(TMP)),
            b: Operand::Imm(0),
        }));
        insts.push(Inst::new(InstOp::SetP {
            pred: Pred(2),
            op: CmpOp::LtU,
            a: Operand::Reg(Reg(SCRATCH)),
            b: Operand::Imm(1 + self.rng.below(48)),
        }));
        insts.push(Inst::new(InstOp::SetP {
            pred: Pred(3),
            op: CmpOp::GeU,
            a: Operand::Reg(Reg(SCRATCH + 1)),
            b: Operand::Imm(self.rng.below(32)),
        }));
        self.push_block(insts)
    }

    fn push_block(&mut self, insts: Vec<Inst>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock { insts });
        id
    }

    fn gen_region_into(&mut self, out: &mut Vec<Stmt>, depth: u32) {
        let n = 1 + self.rng.below(3 + u64::from(depth == 0));
        for _ in 0..n {
            if self.stmt_budget == 0 {
                return;
            }
            self.stmt_budget -= 1;
            let roll = self.rng.below(100);
            if depth == 0 && roll < 5 {
                out.push(Stmt::Sync);
            } else if depth < 3 && roll < 22 {
                out.push(self.gen_if(depth));
            } else if depth < 3 && self.loop_depth < 4 && roll < 38 {
                self.gen_while_into(out, depth);
            } else {
                let id = self.gen_random_block();
                out.push(Stmt::Block(id));
            }
        }
    }

    fn gen_if(&mut self, depth: u32) -> Stmt {
        let pred = Pred(self.rng.below(4) as u16);
        let mut then_region = Vec::new();
        self.gen_region_into(&mut then_region, depth + 1);
        let mut else_region = Vec::new();
        if self.rng.chance(60) {
            self.gen_region_into(&mut else_region, depth + 1);
        }
        Stmt::If {
            pred,
            then_region: Region(then_region),
            else_region: Region(else_region),
        }
    }

    /// Emits `init-block; while cond-block → p { body }`. The condition
    /// block increments the depth-reserved counter and compares it against
    /// either an immediate or a lane-varying bound register, so roughly
    /// half the generated loops diverge.
    fn gen_while_into(&mut self, out: &mut Vec<Stmt>, depth: u32) {
        let d = self.loop_depth;
        let ctr = Reg(LOOP_CTR + d);
        let pred = Pred(4 + d);
        self.loop_depth += 1;

        let init = self.push_block(vec![Inst::new(InstOp::Mov {
            dst: ctr,
            src: Operand::Imm(0),
        })]);
        out.push(Stmt::Block(init));

        let bound = if self.rng.chance(50) {
            Operand::Imm(1 + self.rng.below(4))
        } else {
            Operand::Reg(Reg(LOOP_BOUND + self.rng.below(4) as u16))
        };
        let cond = self.push_block(vec![
            Inst::new(InstOp::Bin {
                op: BinOp::Add,
                dst: ctr,
                a: Operand::Reg(ctr),
                b: Operand::Imm(1),
            }),
            Inst::new(InstOp::SetP {
                pred,
                op: CmpOp::LeU,
                a: Operand::Reg(ctr),
                b: bound,
            }),
        ]);
        let mut body = Vec::new();
        self.gen_region_into(&mut body, depth + 1);
        out.push(Stmt::While {
            cond_block: cond,
            pred,
            body: Region(body),
        });
        self.loop_depth -= 1;
    }

    fn gen_random_block(&mut self) -> BlockId {
        let n = 1 + self.rng.below(5);
        let mut insts = Vec::new();
        for _ in 0..n {
            self.gen_inst_into(&mut insts);
        }
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock { insts });
        id
    }

    fn scratch(&mut self) -> Reg {
        Reg(SCRATCH + self.rng.below(u64::from(N_SCRATCH)) as u16)
    }

    fn value_operand(&mut self) -> Operand {
        match self.rng.below(10) {
            0..=5 => Operand::Reg(self.scratch()),
            6 => Operand::Imm(self.rng.below(16)),
            7 => Operand::Imm(self.rng.below(256)),
            8 => Operand::Imm(self.rng.next_u64()),
            _ => Operand::Imm(u64::from((self.rng.next_u64() as f32).to_bits())),
        }
    }

    fn width(&mut self) -> MemWidth {
        [MemWidth::B1, MemWidth::B2, MemWidth::B4, MemWidth::B8][self.rng.below(4) as usize]
    }

    fn maybe_guard(&mut self, op: InstOp) -> Inst {
        if self.rng.chance(20) {
            Inst::guarded(op, Pred(self.rng.below(4) as u16), self.rng.chance(50))
        } else {
            Inst::new(op)
        }
    }

    /// Appends the address computation `temp = base + (value & (size - w))`
    /// for an in-bounds, width-aligned access, and returns the temp
    /// register. `size` and the width are powers of two, so `size - w` is a
    /// pure bitmask of aligned in-bounds offsets.
    fn masked_addr(
        &mut self,
        insts: &mut Vec<Inst>,
        space: MemSpace,
        width: MemWidth,
        buffer_sizes: Option<&[u64]>,
    ) -> (Reg, MemSpace) {
        let w = width.bytes();
        let (temp, size, base) = match space {
            MemSpace::Global => {
                let sizes = buffer_sizes.expect("global access needs buffer sizes");
                let b = self.rng.below(sizes.len() as u64) as u16;
                (Reg(ADDR_GLOBAL), sizes[b as usize], Some(Reg(BUF_BASE + b)))
            }
            MemSpace::Shared => (Reg(ADDR_SHARED), u64::from(SHARED_BYTES), None),
            MemSpace::Local => (Reg(ADDR_LOCAL), u64::from(LOCAL_BYTES), None),
            MemSpace::Constant => (Reg(ADDR_CONST), u64::from(CONST_BYTES), None),
            MemSpace::Texture => unreachable!("texture accesses use Tex"),
        };
        let src = if space == MemSpace::Shared && self.rng.chance(35) {
            // Deliberate strided shared pattern to exercise bank-conflict
            // cost equality: lane * stride.
            let stride = [1u64, 2, 4, 8, 32][self.rng.below(5) as usize];
            insts.push(Inst::new(InstOp::Bin {
                op: BinOp::Mul,
                dst: Reg(TMP),
                a: Operand::Reg(Reg(SCRATCH + 1)), // LaneId
                b: Operand::Imm(stride),
            }));
            Reg(TMP)
        } else {
            self.scratch()
        };
        insts.push(Inst::new(InstOp::Bin {
            op: BinOp::And,
            dst: temp,
            a: Operand::Reg(src),
            b: Operand::Imm(size - w),
        }));
        if let Some(base) = base {
            insts.push(Inst::new(InstOp::Bin {
                op: BinOp::Add,
                dst: temp,
                a: Operand::Reg(temp),
                b: Operand::Reg(base),
            }));
        }
        (temp, space)
    }

    #[allow(clippy::too_many_lines)]
    fn gen_inst_into(&mut self, insts: &mut Vec<Inst>) {
        let sizes = self.buffer_sizes.clone();
        let roll = self.rng.below(100);
        match roll {
            // Integer/float binary ALU.
            0..=27 => {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::Sar,
                    BinOp::MinU,
                    BinOp::MaxU,
                    BinOp::MinS,
                    BinOp::MaxS,
                    BinOp::FAdd,
                    BinOp::FSub,
                    BinOp::FMul,
                    BinOp::FDiv,
                    BinOp::FMin,
                    BinOp::FMax,
                ];
                let op = ops[self.rng.below(ops.len() as u64) as usize];
                let (dst, a, b) = (self.scratch(), self.value_operand(), self.value_operand());
                let inst = self.maybe_guard(InstOp::Bin { op, dst, a, b });
                insts.push(inst);
            }
            // Division / remainder: usually a non-zero immediate divisor;
            // rarely a register, to fuzz DivisionByZero equality.
            28..=30 => {
                let op = if self.rng.chance(50) {
                    BinOp::DivU
                } else {
                    BinOp::RemU
                };
                let b = if self.rng.chance(90) {
                    Operand::Imm(1 + self.rng.below(16))
                } else {
                    Operand::Reg(self.scratch())
                };
                let (dst, a) = (self.scratch(), self.value_operand());
                let inst = self.maybe_guard(InstOp::Bin { op, dst, a, b });
                insts.push(inst);
            }
            31..=36 => {
                let ops = [
                    UnOp::Not,
                    UnOp::Neg,
                    UnOp::FNeg,
                    UnOp::FAbs,
                    UnOp::FSqrt,
                    UnOp::FExp,
                    UnOp::FLn,
                    UnOp::FFloor,
                    UnOp::I2F,
                    UnOp::F2I,
                ];
                let op = ops[self.rng.below(ops.len() as u64) as usize];
                let (dst, a) = (self.scratch(), self.value_operand());
                let inst = self.maybe_guard(InstOp::Un { op, dst, a });
                insts.push(inst);
            }
            37..=42 => {
                let (dst, src) = (self.scratch(), self.value_operand());
                let inst = self.maybe_guard(InstOp::Mov { dst, src });
                insts.push(inst);
            }
            43..=50 => {
                let ops = [
                    CmpOp::Eq,
                    CmpOp::Ne,
                    CmpOp::LtU,
                    CmpOp::LeU,
                    CmpOp::GtU,
                    CmpOp::GeU,
                    CmpOp::LtS,
                    CmpOp::LeS,
                    CmpOp::GtS,
                    CmpOp::GeS,
                    CmpOp::FLt,
                    CmpOp::FLe,
                    CmpOp::FGt,
                    CmpOp::FGe,
                    CmpOp::FEq,
                    CmpOp::FNe,
                ];
                let op = ops[self.rng.below(ops.len() as u64) as usize];
                let pred = Pred(self.rng.below(4) as u16);
                let (a, b) = (self.value_operand(), self.value_operand());
                let inst = self.maybe_guard(InstOp::SetP { pred, op, a, b });
                insts.push(inst);
            }
            51..=54 => {
                let (dst, a, b) = (self.scratch(), self.value_operand(), self.value_operand());
                let pred = Pred(self.rng.below(4) as u16);
                let inst = self.maybe_guard(InstOp::Sel { dst, pred, a, b });
                insts.push(inst);
            }
            55..=58 => {
                let srs = [
                    SpecialReg::TidX,
                    SpecialReg::TidY,
                    SpecialReg::TidZ,
                    SpecialReg::CtaidX,
                    SpecialReg::CtaidY,
                    SpecialReg::CtaidZ,
                    SpecialReg::NTidX,
                    SpecialReg::NTidY,
                    SpecialReg::NTidZ,
                    SpecialReg::NCtaidX,
                    SpecialReg::NCtaidY,
                    SpecialReg::NCtaidZ,
                    SpecialReg::LaneId,
                    SpecialReg::WarpId,
                    SpecialReg::GlobalTid,
                ];
                let sr = srs[self.rng.below(srs.len() as u64) as usize];
                let dst = self.scratch();
                let inst = self.maybe_guard(InstOp::Special { dst, sr });
                insts.push(inst);
            }
            59..=61 => {
                let mode = if self.rng.chance(50) {
                    ShflMode::Xor
                } else {
                    ShflMode::Idx
                };
                let (dst, src) = (self.scratch(), self.scratch());
                let lane = if self.rng.chance(70) {
                    Operand::Imm(self.rng.below(64))
                } else {
                    Operand::Reg(self.scratch())
                };
                let inst = self.maybe_guard(InstOp::Shfl {
                    mode,
                    dst,
                    src,
                    lane,
                });
                insts.push(inst);
            }
            62..=64 => {
                let dst = self.scratch();
                let pred = Pred(self.rng.below(4) as u16);
                let inst = self.maybe_guard(InstOp::Ballot { dst, pred });
                insts.push(inst);
            }
            // Parameter loads; ~1 in 20 is deliberately out of range.
            65..=66 => {
                let n = self.n_buffers + self.n_scalars;
                let index = if self.rng.chance(5) {
                    n + self.rng.below(3) as u16
                } else {
                    self.rng.below(u64::from(n)) as u16
                };
                let dst = self.scratch();
                let inst = self.maybe_guard(InstOp::LdParam { dst, index });
                insts.push(inst);
            }
            // Loads. ~2% use a raw (unmasked) register address to fuzz
            // Memory-error equality.
            67..=78 => {
                let width = self.width();
                let space = [
                    MemSpace::Global,
                    MemSpace::Global,
                    MemSpace::Shared,
                    MemSpace::Shared,
                    MemSpace::Local,
                    MemSpace::Constant,
                ][self.rng.below(6) as usize];
                let dst = self.scratch();
                if self.rng.chance(2) {
                    let addr = Operand::Reg(self.scratch());
                    let inst = self.maybe_guard(InstOp::Ld {
                        dst,
                        space,
                        addr,
                        width,
                    });
                    insts.push(inst);
                } else {
                    let (temp, space) = self.masked_addr(insts, space, width, Some(&sizes));
                    let inst = self.maybe_guard(InstOp::Ld {
                        dst,
                        space,
                        addr: Operand::Reg(temp),
                        width,
                    });
                    insts.push(inst);
                }
            }
            // Stores (constant-space stores are a deliberate rare fault).
            79..=86 => {
                let width = self.width();
                let space = if self.rng.chance(2) {
                    MemSpace::Constant
                } else {
                    [
                        MemSpace::Global,
                        MemSpace::Global,
                        MemSpace::Shared,
                        MemSpace::Local,
                    ][self.rng.below(4) as usize]
                };
                let value = self.value_operand();
                let (temp, space) = self.masked_addr(insts, space, width, Some(&sizes));
                let inst = self.maybe_guard(InstOp::St {
                    space,
                    addr: Operand::Reg(temp),
                    value,
                    width,
                });
                insts.push(inst);
            }
            87..=90 => {
                let ops = [
                    AtomicOp::Add,
                    AtomicOp::MinU,
                    AtomicOp::MaxU,
                    AtomicOp::Exch,
                ];
                let op = ops[self.rng.below(ops.len() as u64) as usize];
                let width = self.width();
                let space = if self.rng.chance(50) {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                };
                let (dst, value) = (self.scratch(), self.value_operand());
                let (temp, space) = self.masked_addr(insts, space, width, Some(&sizes));
                let inst = self.maybe_guard(InstOp::Atomic {
                    op,
                    dst,
                    space,
                    addr: Operand::Reg(temp),
                    value,
                    width,
                });
                insts.push(inst);
            }
            // Texture fetches; ~5% target an unbound slot.
            _ => {
                let slot = if self.rng.chance(5) {
                    self.n_textures + self.rng.below(3) as u16
                } else {
                    self.rng.below(u64::from(self.n_textures)) as u16
                };
                let (dst, x, y) = (self.scratch(), self.value_operand(), self.value_operand());
                let inst = self.maybe_guard(InstOp::Tex { dst, slot, x, y });
                insts.push(inst);
            }
        }
    }
}

/// Everything one interpreter run makes observable: the launch outcome
/// (stats or the exact error), the full hook event streams in order, and
/// the final contents of every global buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchObservation {
    /// `Ok(stats)` or the exact [`crate::error::ExecError`].
    pub result: Result<LaunchStats, crate::error::ExecError>,
    /// Basic-block entries per warp, in execution order.
    pub bb_entries: Vec<(crate::hook::WarpRef, BlockId)>,
    /// Memory access events per warp, in execution order.
    pub accesses: Vec<(crate::hook::WarpRef, crate::hook::MemAccessEvent)>,
    /// Kernel names announced via `kernel_begin`.
    pub kernels: Vec<String>,
    /// Final bytes of each global buffer, in parameter order.
    pub final_buffers: Vec<Vec<u8>>,
}

/// Runs `kernel` once under the chosen interpreter on a freshly
/// initialised device and captures everything observable.
pub fn run_kernel(kernel: &GeneratedKernel, interpreter: Interpreter) -> LaunchObservation {
    let mut mem = DeviceMemory::new();
    let args = kernel.setup(&mut mem);
    let mut hook = RecordingHook::default();
    let result = launch_with_options(
        &mut mem,
        &kernel.program,
        kernel.config,
        &args,
        &mut hook,
        LaunchOptions {
            fuel: kernel.fuel,
            warp_size: kernel.warp_size,
            interpreter,
            cancel: None,
        },
    );
    let final_buffers = kernel
        .buffers
        .iter()
        .zip(&args)
        .map(|(&size, &base)| {
            let mut out = vec![0u8; size as usize];
            mem.read_bytes(base, &mut out)
                .expect("buffer readback after launch");
            out
        })
        .collect();
    LaunchObservation {
        result,
        bb_entries: hook.bb_entries,
        accesses: hook.accesses,
        kernels: hook.kernels,
        final_buffers,
    }
}

/// The differential conformance check: runs `kernel` through the lowered
/// fast path and through the reference oracle and compares every
/// observable. `Ok(())` means the interpreters agree bit-for-bit; `Err`
/// carries a human-readable description of the first divergence.
///
/// # Errors
///
/// Returns `Err` when any observable differs between the interpreters.
pub fn diff_case(kernel: &GeneratedKernel) -> Result<(), String> {
    let fast = run_kernel(kernel, Interpreter::Lowered);
    let oracle = run_kernel(kernel, Interpreter::Oracle);
    if fast.result != oracle.result {
        return Err(format!(
            "launch outcome diverged:\n  lowered: {:?}\n  oracle:  {:?}",
            fast.result, oracle.result
        ));
    }
    if fast.kernels != oracle.kernels {
        return Err(format!(
            "kernel_begin sequence diverged: {:?} vs {:?}",
            fast.kernels, oracle.kernels
        ));
    }
    if fast.bb_entries != oracle.bb_entries {
        let n = fast
            .bb_entries
            .iter()
            .zip(&oracle.bb_entries)
            .take_while(|(a, b)| a == b)
            .count();
        return Err(format!(
            "bb_entry streams diverged at index {n}: lowered {:?} vs oracle {:?} \
             (lengths {} vs {})",
            fast.bb_entries.get(n),
            oracle.bb_entries.get(n),
            fast.bb_entries.len(),
            oracle.bb_entries.len()
        ));
    }
    if fast.accesses != oracle.accesses {
        let n = fast
            .accesses
            .iter()
            .zip(&oracle.accesses)
            .take_while(|(a, b)| a == b)
            .count();
        return Err(format!(
            "memory event streams diverged at index {n}: lowered {:?} vs oracle {:?} \
             (lengths {} vs {})",
            fast.accesses.get(n),
            oracle.accesses.get(n),
            fast.accesses.len(),
            oracle.accesses.len()
        ));
    }
    if fast.final_buffers != oracle.final_buffers {
        for (i, (a, b)) in fast
            .final_buffers
            .iter()
            .zip(&oracle.final_buffers)
            .enumerate()
        {
            if a != b {
                let byte = a.iter().zip(b).take_while(|(x, y)| x == y).count();
                return Err(format!(
                    "final memory diverged in buffer {i} at byte {byte}: \
                     lowered {:#04x} vs oracle {:#04x}",
                    a[byte], b[byte]
                ));
            }
        }
    }
    Ok(())
}

fn count_stmts(region: &Region) -> usize {
    region
        .0
        .iter()
        .map(|s| {
            1 + match s {
                Stmt::If {
                    then_region,
                    else_region,
                    ..
                } => count_stmts(then_region) + count_stmts(else_region),
                Stmt::While { body, .. } => count_stmts(body),
                _ => 0,
            }
        })
        .sum()
}

/// Removes the `n`-th statement in preorder; `n` is decremented as
/// statements are passed. Returns true once a removal happened.
fn remove_nth_stmt(region: &mut Region, n: &mut usize) -> bool {
    let mut i = 0;
    while i < region.0.len() {
        if *n == 0 {
            region.0.remove(i);
            return true;
        }
        *n -= 1;
        let removed = match &mut region.0[i] {
            Stmt::If {
                then_region,
                else_region,
                ..
            } => remove_nth_stmt(then_region, n) || remove_nth_stmt(else_region, n),
            Stmt::While { body, .. } => remove_nth_stmt(body, n),
            _ => false,
        };
        if removed {
            return true;
        }
        i += 1;
    }
    false
}

/// Greedily minimises a kernel that fails [`diff_case`]: first caps the
/// fuel (bounding every candidate's runtime), then repeatedly deletes
/// statements and individual instructions while the divergence persists.
/// Returns the input unchanged if it does not actually fail.
pub fn shrink(kernel: &GeneratedKernel) -> GeneratedKernel {
    let fails = |k: &GeneratedKernel| k.program.validate().is_ok() && diff_case(k).is_err();
    if !fails(kernel) {
        return kernel.clone();
    }
    let mut cur = kernel.clone();
    let mut capped = cur.clone();
    capped.fuel = capped.fuel.min(100_000);
    if fails(&capped) {
        cur = capped;
    }
    loop {
        let mut reduced = false;
        let mut n = 0;
        while n < count_stmts(&cur.program.body) {
            let mut cand = cur.clone();
            let mut idx = n;
            remove_nth_stmt(&mut cand.program.body, &mut idx);
            if fails(&cand) {
                cur = cand;
                reduced = true;
            } else {
                n += 1;
            }
        }
        for b in 0..cur.program.blocks.len() {
            let mut i = 0;
            while i < cur.program.blocks[b].insts.len() {
                let mut cand = cur.clone();
                cand.program.blocks[b].insts.remove(i);
                if fails(&cand) {
                    cur = cand;
                    reduced = true;
                } else {
                    i += 1;
                }
            }
        }
        if !reduced {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every seed maps to a valid program, deterministically.
    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..32u64 {
            let a = GeneratedKernel::generate(seed);
            let b = GeneratedKernel::generate(seed);
            a.program
                .validate()
                .expect("generated program must validate");
            assert_eq!(
                format!("{:?}", a.program),
                format!("{:?}", b.program),
                "seed {seed} not deterministic"
            );
            assert_eq!(a.config, b.config);
            assert_eq!(a.init_seed, b.init_seed);
        }
    }

    /// In-crate differential smoke test: a small fixed-seed batch through
    /// both interpreters (the big batch runs as an integration test).
    #[test]
    fn differential_smoke() {
        for seed in 0..48u64 {
            let k = GeneratedKernel::generate(seed);
            if let Err(e) = diff_case(&k) {
                let small = shrink(&k);
                panic!(
                    "seed {seed} diverged: {e}\nshrunk program:\n{}",
                    crate::disasm::dump_program(&small.program)
                );
            }
        }
    }

    /// Kernels survive a serde round-trip byte-identically — the corpus
    /// format contract.
    #[test]
    fn corpus_serde_roundtrip() {
        let k = GeneratedKernel::generate(7);
        let json = serde_json::to_string(&k).unwrap();
        let back: GeneratedKernel = serde_json::from_str(&json).unwrap();
        assert_eq!(format!("{:?}", k.program), format!("{:?}", back.program));
        assert_eq!(k.config, back.config);
        assert_eq!(k.warp_size, back.warp_size);
        assert_eq!(k.fuel, back.fuel);
        assert_eq!(k.buffers, back.buffers);
        assert_eq!(k.scalars, back.scalars);
        assert_eq!(k.textures, back.textures);
        assert_eq!(k.init_seed, back.init_seed);
        // And the round-tripped kernel still conforms.
        diff_case(&back).unwrap();
    }

    /// The shrinker leaves passing kernels untouched.
    #[test]
    fn shrink_is_identity_on_passing_kernels() {
        let k = GeneratedKernel::generate(3);
        diff_case(&k).unwrap();
        let s = shrink(&k);
        assert_eq!(format!("{:?}", k.program), format!("{:?}", s.program));
    }
}
