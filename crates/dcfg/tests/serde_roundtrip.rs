//! Serialization round-trips for the A-DCFG — traces must survive being
//! written to disk and reloaded for offline analysis.

use owl_dcfg::{Adcfg, AdcfgBuilder};

fn sample_graph() -> Adcfg {
    let mut b = AdcfgBuilder::new();
    for w in 0..3u64 {
        for (i, bb) in [0u32, 1, 2, 1, 3].into_iter().enumerate() {
            b.enter_block(w, bb);
            b.record_access(w, 0, [w * 64 + i as u64 * 8]);
            b.record_cost(w, 0, 1 + (i as u32 % 3));
        }
    }
    b.finish()
}

#[test]
fn adcfg_json_roundtrip_is_lossless() {
    let g = sample_graph();
    let json = serde_json::to_string(&g).expect("serialize");
    let back: Adcfg = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(g, back);
}

#[test]
fn merged_graphs_roundtrip_too() {
    let mut g = sample_graph();
    g.merge(&sample_graph());
    let json = serde_json::to_string(&g).expect("serialize");
    let back: Adcfg = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(g, back);
    // The merged counts are intact after the round-trip.
    assert_eq!(back.edge(1, 2), g.edge(1, 2));
    assert_eq!(back.node(1).unwrap().visits, 12);
}

#[test]
fn empty_graph_roundtrips() {
    let g = Adcfg::new();
    let json = serde_json::to_string(&g).expect("serialize");
    let back: Adcfg = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(g, back);
}
