//! Regenerates Table III: leaks detected by Owl per workload.
//!
//! ```text
//! cargo run --release -p owl-bench --bin table3 [--runs N]
//! ```
//!
//! Paper reference (counts depend on implementation granularity; the
//! *shape* — which workloads leak, through which channel — is the claim):
//!
//! | Programs     | Kernel leaks | D.F. leaks | C.F. leaks |
//! |--------------|--------------|------------|------------|
//! | Libgpucrypto | 0/0          | 66/69      | 7/7        |
//! | PyTorch      | 8/8          | 8/11       | 6/8        |
//! | nvJPEG enc.  | 0            | 45         | 98         |
//! | nvJPEG dec.  | —            | none       | none       |

use owl_bench::{leak_row, write_bench_json};
use owl_core::TracedProgram;
use owl_workloads::aes::{AesScan, AesTTable};
use owl_workloads::coalescing::CoalescingStride;
use owl_workloads::histogram::{HistogramDirect, HistogramOblivious};
use owl_workloads::jpeg::{synthetic_image, JpegDecode, JpegEncode, JpegEncodeFixedLength};
use owl_workloads::mlp::{MlpHiddenWidth, WIDTHS};
use owl_workloads::render::GlyphRender;
use owl_workloads::rsa::{RsaLadder, RsaSquareMultiply};
use owl_workloads::search::{BinarySearchEarlyExit, BinarySearchFixedDepth};
use owl_workloads::torch::{Tensor, TorchFunction, TorchInput, TorchOpKind};

fn runs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--runs" {
            return args.next().and_then(|v| v.parse().ok()).expect("--runs N");
        }
    }
    100 // the paper's setting
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let runs = runs_from_args();
    println!("Table III — leaks detected by Owl ({runs} fixed + {runs} random runs, alpha = 0.95)");
    println!("{:-<78}", "");
    println!(
        "{:<34} {:>7} {:>7} {:>7}   verdict",
        "program / function", "kernel", "d.f.", "c.f."
    );
    println!("{:-<78}", "");

    let mut rows = Vec::new();

    // --- Libgpucrypto ----------------------------------------------------
    let keys = [[0u8; 16], [0xff; 16], *b"owl-sca-detector", [0x3c; 16]];
    let aes = AesTTable::new(32);
    rows.push(leak_row("libgpucrypto/aes128-ttable", &aes, &keys, runs)?.0);

    let scan = AesScan::with_rounds(32, 2);
    rows.push(
        leak_row(
            "libgpucrypto/aes128-scan (ct)",
            &scan,
            &keys[..3],
            runs.min(15),
        )?
        .0,
    );

    let exps = [0x8000_0001u64, 0xffff_ffff, 0x0f0f_0f0f, 3];
    let rsa = RsaSquareMultiply::new(32);
    rows.push(leak_row("libgpucrypto/rsa-sqm", &rsa, &exps, runs)?.0);
    let ladder = RsaLadder::new(32);
    rows.push(leak_row("libgpucrypto/rsa-ladder (ct)", &ladder, &exps, runs.min(15))?.0);

    // --- PyTorch stand-in --------------------------------------------------
    for kind in TorchOpKind::ALL {
        let f = TorchFunction::new(kind);
        let mut inputs: Vec<TorchInput> = (0..4).map(|s| f.random_input(9000 + s)).collect();
        if kind == TorchOpKind::TensorRepr {
            inputs.push(TorchInput::Tensor(Tensor::zeros([
                owl_workloads::torch::function::VEC_N,
            ])));
        }
        rows.push(leak_row(&format!("pytorch/{}", kind.label()), &f, &inputs, runs)?.0);
    }

    // --- nvJPEG stand-in ---------------------------------------------------
    let enc = JpegEncode::new(16, 16);
    let images: Vec<Vec<u8>> = (0..4).map(|s| synthetic_image(s, 16, 16)).collect();
    rows.push(leak_row("nvjpeg/encode", &enc, &images, runs)?.0);

    let dec = JpegDecode::new(16, 16);
    let coeffs: Vec<Vec<i32>> = (0..4).map(|s| dec.random_input(s)).collect();
    rows.push(leak_row("nvjpeg/decode", &dec, &coeffs, runs.min(15))?.0);

    let fixed = JpegEncodeFixedLength::new(16, 16);
    rows.push(leak_row("nvjpeg/encode-fixed (ct)", &fixed, &images, runs.min(15))?.0);

    // --- extended targets (beyond the paper's table) -----------------------
    let hist = HistogramDirect::new(64);
    let hist_inputs: Vec<Vec<u8>> = (0..4).map(|s| hist.random_input(40 + s)).collect();
    rows.push(leak_row("histogram/direct", &hist, &hist_inputs, runs)?.0);
    let obl = HistogramOblivious::new(64);
    let obl_inputs: Vec<Vec<u8>> = (0..4).map(|s| obl.random_input(50 + s)).collect();
    rows.push(leak_row("histogram/oblivious (ct)", &obl, &obl_inputs, runs.min(15))?.0);

    let bs = BinarySearchEarlyExit::new(32);
    let bs_keys: Vec<u64> = (0..5).map(|s| bs.random_input(60 + s)).collect();
    rows.push(leak_row("search/early-exit", &bs, &bs_keys, runs)?.0);
    let bf = BinarySearchFixedDepth::new(32);
    let bf_keys: Vec<u64> = (0..5).map(|s| bf.random_input(70 + s)).collect();
    rows.push(leak_row("search/fixed-depth", &bf, &bf_keys, runs)?.0);

    let mlp = MlpHiddenWidth::new();
    rows.push(leak_row("mlp/hidden-width", &mlp, &WIDTHS.map(|w| w), runs)?.0);

    let render = GlyphRender::new();
    let texts: Vec<Vec<u8>> = (0..4).map(|s| render.random_input(80 + s)).collect();
    rows.push(leak_row("render/glyph-blit", &render, &texts, runs)?.0);

    let coal = CoalescingStride::new();
    rows.push(leak_row("coalescing/strided-gather", &coal, &[1, 33, 65, 97], runs)?.0);

    for r in &rows {
        println!(
            "{:<34} {:>7} {:>7} {:>7}   {}",
            r.name, r.kernel, r.data_flow, r.control_flow, r.verdict
        );
    }
    println!("{:-<78}", "");
    let path = write_bench_json("table3", &rows)?;
    println!("machine-readable rows: {}", path.display());
    Ok(())
}
