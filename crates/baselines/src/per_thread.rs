//! A DATA-style per-thread tracer (the paper's RQ2/RQ3 comparator).
//!
//! DATA (USENIX Security '18) records the full address trace of *each*
//! thread and differentially compares per-thread traces between inputs.
//! That is exact but its memory grows linearly with the thread count —
//! the scalability wall the paper contrasts with Owl's A-DCFG aggregation.
//! This module reproduces the approach on the simulator so the comparison
//! can be measured rather than asserted.

use owl_core::TracedProgram;
use owl_gpu::grid::WARP_SIZE;
use owl_gpu::hook::{KernelHook, LaunchInfo, MemAccessEvent, WarpRef};

use owl_gpu::program::BlockId;
use owl_host::{Device, HostError};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One event in a thread's linear trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadEvent {
    /// The thread entered a basic block.
    Block(u32),
    /// The thread accessed memory: `(block, instruction, address)`.
    Mem(u32, u32, u64),
}

/// Identity of one thread across the whole launch sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadKey {
    /// Index of the kernel launch within the run.
    pub launch: u32,
    /// Linearised CTA id.
    pub cta: u32,
    /// Thread id within the CTA.
    pub thread: u32,
}

/// A [`KernelHook`] that records every thread's full trace separately —
/// deliberately *without* warp aggregation.
#[derive(Debug, Default)]
pub struct PerThreadTracer {
    /// Completed traces.
    pub traces: BTreeMap<ThreadKey, Vec<ThreadEvent>>,
    launch: u32,
    warp_size: u32,
}

impl PerThreadTracer {
    /// A fresh tracer.
    pub fn new() -> Self {
        Self::default()
    }

    fn warp_size(&self) -> u32 {
        if self.warp_size == 0 {
            WARP_SIZE
        } else {
            self.warp_size
        }
    }

    /// Total number of events recorded.
    pub fn event_count(&self) -> usize {
        self.traces.values().map(Vec::len).sum()
    }

    /// Estimated memory footprint in bytes: every event costs its own
    /// record, for every thread (the DATA cost model).
    pub fn size_bytes(&self) -> usize {
        // Block events: 4 bytes of payload + tag; Mem: 16 + tag. Use the
        // in-memory enum size for honesty.
        self.event_count() * std::mem::size_of::<ThreadEvent>()
            + self.traces.len() * std::mem::size_of::<ThreadKey>()
    }
}

impl KernelHook for PerThreadTracer {
    fn kernel_begin(&mut self, info: &LaunchInfo) {
        self.warp_size = info.warp_size;
    }

    fn kernel_end(&mut self, _info: &LaunchInfo) {
        self.launch += 1;
    }

    fn bb_entry(&mut self, warp: WarpRef, bb: BlockId) {
        // DATA has no warp concept: each thread logs the block separately.
        // The hook does not carry the active mask, so like a per-thread DBI
        // tool we log all lanes of the warp (an *under*-estimate of DATA's
        // cost whenever fewer lanes are active).
        let ws = self.warp_size();
        for lane in 0..ws {
            let key = ThreadKey {
                launch: self.launch,
                cta: warp.cta,
                thread: warp.warp * ws + lane,
            };
            self.traces
                .entry(key)
                .or_default()
                .push(ThreadEvent::Block(bb.0));
        }
    }

    fn mem_access(&mut self, warp: WarpRef, event: &MemAccessEvent) {
        let ws = self.warp_size();
        for &(lane, addr) in &event.lane_addrs {
            let key = ThreadKey {
                launch: self.launch,
                cta: warp.cta,
                thread: warp.warp * ws + u32::from(lane),
            };
            self.traces.entry(key).or_default().push(ThreadEvent::Mem(
                event.bb.0,
                event.inst_idx,
                addr,
            ));
        }
    }
}

/// The result of one DATA-style differential comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerThreadDiff {
    /// Threads present in both runs.
    pub threads_compared: usize,
    /// Threads whose traces differ between the two inputs.
    pub differing_threads: usize,
    /// Bytes of trace state held for the *pair* of runs.
    pub memory_bytes: usize,
}

/// Runs `program` on two inputs under per-thread tracing and diffs each
/// thread's trace — the DATA methodology transplanted to the GPU.
///
/// # Errors
///
/// Propagates program failures.
pub fn per_thread_diff<P: TracedProgram>(
    program: &P,
    a: &P::Input,
    b: &P::Input,
) -> Result<PerThreadDiff, HostError> {
    let ta = record_per_thread(program, a)?;
    let tb = record_per_thread(program, b)?;
    let mut compared = 0;
    let mut differing = 0;
    for (key, trace_a) in &ta.traces {
        if let Some(trace_b) = tb.traces.get(key) {
            compared += 1;
            if trace_a != trace_b {
                differing += 1;
            }
        }
    }
    Ok(PerThreadDiff {
        threads_compared: compared,
        differing_threads: differing,
        memory_bytes: ta.size_bytes() + tb.size_bytes(),
    })
}

/// Records one run under the per-thread tracer.
///
/// # Errors
///
/// Propagates program failures.
pub fn record_per_thread<P: TracedProgram>(
    program: &P,
    input: &P::Input,
) -> Result<PerThreadTracer, HostError> {
    let mut device = Device::new();
    let tracer = Rc::new(RefCell::new(PerThreadTracer::new()));
    device.attach_hook(tracer.clone());
    program.run(&mut device, input)?;
    device.detach_hook();
    drop(device);
    Ok(Rc::try_unwrap(tracer)
        .expect("device dropped, sole owner")
        .into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_workloads::dummy::DummySbox;

    #[test]
    fn per_thread_memory_grows_with_threads_unlike_owl() {
        let small = DummySbox::new(256);
        let big = DummySbox::new(4096);
        let input = 0xABCDu64;

        let pt_small = record_per_thread(&small, &input).unwrap().size_bytes();
        let pt_big = record_per_thread(&big, &input).unwrap().size_bytes();
        let owl_small = owl_core::record_trace(&small, &input).unwrap().size_bytes();
        let owl_big = owl_core::record_trace(&big, &input).unwrap().size_bytes();

        let pt_growth = pt_big as f64 / pt_small as f64;
        let owl_growth = owl_big as f64 / owl_small as f64;
        assert!(pt_growth > 10.0, "per-thread growth {pt_growth}");
        assert!(owl_growth < 2.0, "owl growth {owl_growth}");
    }

    #[test]
    fn diff_detects_secret_dependence_per_thread() {
        let d = DummySbox::new(64);
        let out = per_thread_diff(&d, &1, &2).unwrap();
        assert_eq!(out.threads_compared, 256); // 256-thread CTA (8 warps)
        assert!(out.differing_threads >= 48, "{out:?}");
    }

    #[test]
    fn identical_inputs_produce_no_diffs() {
        let d = DummySbox::new(64);
        let out = per_thread_diff(&d, &7, &7).unwrap();
        assert_eq!(out.differing_threads, 0);
    }
}
