//! Shared harness code for regenerating the paper's tables and figures.
//!
//! The binaries in `src/bin/` print the rows of the corresponding paper
//! artefact; the Criterion benches in `benches/` time the primitive
//! operations behind Table IV. See `EXPERIMENTS.md` at the workspace root
//! for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use owl_core::{detect, Detection, LeakKind, OwlConfig, TracedProgram};

/// One row of a Table III-style leak summary.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LeakRow {
    /// Workload name.
    pub name: String,
    /// Kernel leaks found.
    pub kernel: usize,
    /// Device data-flow leaks found.
    pub data_flow: usize,
    /// Device control-flow leaks found.
    pub control_flow: usize,
    /// The verdict string.
    pub verdict: String,
}

/// Runs detection and summarises it as a [`LeakRow`].
///
/// # Errors
///
/// Propagates detection failures.
pub fn leak_row<P>(
    name: &str,
    program: &P,
    inputs: &[P::Input],
    runs: usize,
) -> Result<(LeakRow, Detection<P::Input>), owl_core::DetectError>
where
    P: TracedProgram + Sync,
    P::Input: Send + Sync,
{
    let detection = detect(
        program,
        inputs,
        &OwlConfig {
            runs,
            ..OwlConfig::default()
        },
    )?;
    Ok((
        LeakRow {
            name: name.to_string(),
            kernel: detection.report.count(LeakKind::Kernel),
            data_flow: detection.report.count(LeakKind::DataFlow),
            control_flow: detection.report.count(LeakKind::ControlFlow),
            verdict: format!("{:?}", detection.verdict),
        },
        detection,
    ))
}

/// Formats a byte count like the paper's MB columns.
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2} KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KB");
        assert_eq!(fmt_bytes(3 << 20), "3.00 MB");
    }

    #[test]
    fn leak_row_summarises_detection() {
        let d = owl_workloads::dummy::DummySbox::new(64);
        let (row, _) = leak_row("dummy", &d, &[1, 2, 3], 30).unwrap();
        assert_eq!(row.name, "dummy");
        assert!(row.data_flow >= 1, "{row:?}");
    }
}
