//! The launch engine: grids, CTAs, warps, barriers.
//!
//! The engine executes CTAs sequentially and, within a CTA, runs each warp
//! until it finishes or parks at a barrier; when every warp of the CTA has
//! parked, the barrier releases and all warps resume. This models the
//! paper's abstraction (§V-A): "we consider all warps under different
//! blocks in a kernel as executing simultaneously" — scheduling-induced
//! leakage is explicitly out of scope, so a deterministic order is not only
//! acceptable but desirable for differential analysis.

use crate::cancel::CancelToken;
use crate::error::ExecError;
use crate::grid::LaunchConfig;
use crate::hook::{KernelHook, LaunchInfo, MemEventBatch};
use crate::lowered::LoweredProgram;
use crate::mem::{DeviceMemory, LinearMemory};
use crate::program::KernelProgram;
use crate::warp::{ExecEnv, WarpExec, WarpStatus};
use owl_metrics::SimCounters;

/// Default per-launch instruction budget; generous enough for every
/// workload in this repository while still catching runaway loops.
pub const DEFAULT_FUEL: u64 = 2_000_000_000;

/// Basic-block entries between [`CancelToken`] polls. Striding keeps the
/// clock read (armed deadlines call `Instant::now`) off the per-block hot
/// path while still bounding the reaction latency to a few hundred
/// instructions; an un-armed launch pays one branch per block entry.
pub(crate) const CANCEL_CHECK_STRIDE: u32 = 64;

/// Counters describing one completed launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaunchStats {
    /// Dynamic instructions executed (counted once per warp, as a SIMD
    /// unit, matching how a tracer observes them).
    pub instructions: u64,
    /// Number of CTAs executed.
    pub ctas: u64,
    /// Number of non-empty warps executed.
    pub warps: u64,
    /// Detailed execution counters (divergence, reconvergence, memory
    /// transactions, bank conflicts, …) accumulated by the interpreter.
    /// `counters.instructions` always equals `instructions`.
    pub counters: SimCounters,
}

impl LaunchStats {
    /// Accumulates another launch's statistics into this one (used by the
    /// host runtime to keep per-device running totals).
    pub fn accumulate(&mut self, other: &LaunchStats) {
        self.instructions += other.instructions;
        self.ctas += other.ctas;
        self.warps += other.warps;
        self.counters.merge(&other.counters);
    }
}

/// Which interpreter executes a launch.
///
/// Both interpreters implement the same observable contract — identical
/// memory effects, hook event streams, [`LaunchStats`] and errors — and the
/// conformance suite (`genkernel`/`oracle`) holds them to it by running
/// random kernels through both and demanding bit-equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Interpreter {
    /// The production fast path: pre-lowered IR, batched memory events.
    #[default]
    Lowered,
    /// The deliberately naive reference oracle ([`crate::oracle`]): executes
    /// the unlowered program form directly, one instruction and one hook
    /// event at a time, sharing no interpretation logic with the fast path.
    Oracle,
}

/// Launch options beyond geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchOptions {
    /// Instruction budget for the launch.
    pub fuel: u64,
    /// SIMT warp width in lanes (1..=64). 32 models NVIDIA warps; 64
    /// models AMD wavefronts — the paper's conclusion claims the approach
    /// "can also be applied to other similar SIMT architectures", and this
    /// knob lets the whole pipeline be exercised at those widths.
    pub warp_size: u32,
    /// Which interpreter runs the kernel (default: the lowered fast path).
    pub interpreter: Interpreter,
    /// Cooperative cancellation handle, polled at basic-block boundaries
    /// by both interpreters; `None` disarms the checks entirely.
    pub cancel: Option<CancelToken>,
}

impl Default for LaunchOptions {
    fn default() -> Self {
        LaunchOptions {
            fuel: DEFAULT_FUEL,
            warp_size: crate::grid::WARP_SIZE,
            interpreter: Interpreter::default(),
            cancel: None,
        }
    }
}

/// Launches `program` over `mem` with the given geometry and arguments,
/// reporting every instrumentation event to `hook`.
///
/// # Errors
///
/// Returns an [`ExecError`] when the kernel fails validation, a lane
/// faults, a barrier is misused, or the instruction budget runs out.
///
/// # Example
///
/// ```
/// use owl_gpu::build::KernelBuilder;
/// use owl_gpu::grid::LaunchConfig;
/// use owl_gpu::hook::NullHook;
/// use owl_gpu::isa::{MemWidth, SpecialReg};
/// use owl_gpu::mem::DeviceMemory;
/// use owl_gpu::exec::launch;
///
/// // out[i] = i * 2
/// let b = KernelBuilder::new("double");
/// let out = b.param(0);
/// let tid = b.special(SpecialReg::GlobalTid);
/// let two_tid = b.mul(tid, 2u64);
/// let addr = b.add(out, b.mul(tid, 8u64));
/// b.store_global(addr, two_tid, MemWidth::B8);
/// let kernel = b.finish();
///
/// let mut mem = DeviceMemory::new();
/// let (_, base) = mem.alloc(8 * 64);
/// launch(&mut mem, &kernel, LaunchConfig::new(2u32, 32u32), &[base], &mut NullHook)?;
/// assert_eq!(mem.load(base + 8 * 10, 8)?, 20);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn launch(
    mem: &mut DeviceMemory,
    program: &KernelProgram,
    config: LaunchConfig,
    args: &[u64],
    hook: &mut dyn KernelHook,
) -> Result<LaunchStats, ExecError> {
    launch_with_options(mem, program, config, args, hook, LaunchOptions::default())
}

/// [`launch`] with explicit [`LaunchOptions`].
///
/// # Errors
///
/// See [`launch`].
pub fn launch_with_options(
    mem: &mut DeviceMemory,
    program: &KernelProgram,
    config: LaunchConfig,
    args: &[u64],
    hook: &mut dyn KernelHook,
    options: LaunchOptions,
) -> Result<LaunchStats, ExecError> {
    if options.interpreter == Interpreter::Oracle {
        return crate::oracle::launch_oracle(mem, program, config, args, hook, options);
    }
    program.validate()?;
    if config.total_threads() == 0 {
        return Err(ExecError::EmptyLaunch);
    }
    if !(1..=crate::grid::MAX_WARP_SIZE).contains(&options.warp_size) {
        return Err(ExecError::InvalidWarpSize {
            warp_size: options.warp_size,
        });
    }
    // A token that fired before the launch started: bail before the hook
    // sees `kernel_begin`, so no half-open kernel appears in any trace.
    if options
        .cancel
        .as_ref()
        .is_some_and(CancelToken::is_cancelled)
    {
        return Err(ExecError::Cancelled);
    }
    let info = LaunchInfo {
        kernel: program.name.clone(),
        config,
        block_count: program.block_count() as u32,
        warp_size: options.warp_size,
    };
    hook.kernel_begin(&info);

    // Pre-decode the kernel once; every warp interprets the lowered form.
    let lowered = LoweredProgram::lower(program);
    let mut fuel = options.fuel;
    let mut cancel_countdown = 0u32;
    let mut counters = SimCounters::default();
    let mut stats = LaunchStats::default();
    // One warp runs at a time, so a single reusable event batch serves the
    // whole launch; `WarpExec::run` flushes it before returning.
    let mut batch = MemEventBatch::new();

    let n_ctas = config.grid.total();
    let warps_per_block = config.warps_per_block_for(options.warp_size);
    for cta in 0..n_ctas {
        stats.ctas += 1;
        let mut shared = LinearMemory::new(program.shared_mem_bytes as usize);
        let mut warps: Vec<WarpExec<'_>> = (0..warps_per_block)
            .map(|w| {
                WarpExec::new(
                    program,
                    &lowered,
                    config.grid,
                    config.block,
                    cta as u32,
                    w,
                    options.warp_size,
                )
            })
            .filter(|w| !w.is_empty())
            .collect();
        stats.warps += warps.len() as u64;

        // Run all warps to the next barrier (or completion); repeat until
        // every warp is done.
        loop {
            let mut any_running = false;
            let mut at_barrier = 0usize;
            let mut done = 0usize;
            for warp in warps.iter_mut() {
                if warp.is_done() {
                    done += 1;
                    continue;
                }
                any_running = true;
                let mut env = ExecEnv {
                    mem,
                    shared: &mut shared,
                    hook,
                    fuel: &mut fuel,
                    cancel: options.cancel.as_ref(),
                    cancel_countdown: &mut cancel_countdown,
                    args,
                    counters: &mut counters,
                    batch: &mut batch,
                };
                match warp.run(&mut env)? {
                    WarpStatus::AtBarrier => at_barrier += 1,
                    WarpStatus::Done => done += 1,
                }
            }
            if !any_running || done == warps.len() {
                break;
            }
            // Everyone who is not done must be parked at the barrier; a mix
            // of done and parked warps can never release it.
            if at_barrier > 0 && done > 0 {
                return Err(ExecError::BarrierDeadlock);
            }
            if at_barrier == 0 {
                break;
            }
            // All parked: barrier releases, loop resumes every warp.
        }
    }

    stats.instructions = counters.instructions;
    stats.counters = counters;
    hook.kernel_end(&info);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KernelBuilder;
    use crate::grid::LaunchConfig;
    use crate::hook::{NullHook, RecordingHook};
    use crate::isa::{CmpOp, MemWidth, SpecialReg};

    /// out[i] = in[i] + 1 over one warp.
    #[test]
    fn elementwise_add_roundtrip() {
        let b = KernelBuilder::new("inc");
        let inp = b.param(0);
        let out = b.param(1);
        let tid = b.special(SpecialReg::GlobalTid);
        let off = b.mul(tid, 8u64);
        let src = b.add(inp, off);
        let v = b.load_global(src, MemWidth::B8);
        let v1 = b.add(v, 1u64);
        let dst = b.add(out, off);
        b.store_global(dst, v1, MemWidth::B8);
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, a) = mem.alloc(8 * 32);
        let (_, o) = mem.alloc(8 * 32);
        for i in 0..32u64 {
            mem.store(a + i * 8, 8, i * 10).unwrap();
        }
        let stats = launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[a, o],
            &mut NullHook,
        )
        .unwrap();
        for i in 0..32u64 {
            assert_eq!(mem.load(o + i * 8, 8).unwrap(), i * 10 + 1);
        }
        assert_eq!(stats.ctas, 1);
        assert_eq!(stats.warps, 1);
        assert!(stats.instructions > 0);
    }

    /// A partial warp (block of 40 threads = warp of 32 + warp of 8) only
    /// writes the cells of valid lanes.
    #[test]
    fn partial_warp_masks_invalid_lanes() {
        let b = KernelBuilder::new("fill");
        let out = b.param(0);
        let tid = b.special(SpecialReg::GlobalTid);
        let addr = b.add(out, b.mul(tid, 1u64));
        b.store_global(addr, 7u64, MemWidth::B1);
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(64);
        launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 40u32),
            &[o],
            &mut NullHook,
        )
        .unwrap();
        for i in 0..64u64 {
            let expect = if i < 40 { 7 } else { 0 };
            assert_eq!(mem.load(o + i, 1).unwrap(), expect, "byte {i}");
        }
    }

    /// Divergent if/else: even lanes write 1, odd lanes write 2, and the
    /// warp visits both blocks exactly once.
    #[test]
    fn divergent_if_else_reconverges() {
        let b = KernelBuilder::new("diverge");
        let out = b.param(0);
        let tid = b.special(SpecialReg::GlobalTid);
        let bit = b.and(tid, 1u64);
        let addr = b.add(out, b.mul(tid, 1u64));
        let p = b.setp(CmpOp::Eq, bit, 0u64);
        b.if_then_else(
            p,
            |b| {
                b.store_global(addr, 1u64, MemWidth::B1);
            },
            |b| {
                b.store_global(addr, 2u64, MemWidth::B1);
            },
        );
        // Post-reconvergence block: every lane adds 10 to its cell.
        let v = b.load_global(addr, MemWidth::B1);
        let v10 = b.add(v, 10u64);
        b.store_global(addr, v10, MemWidth::B1);
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(32);
        let mut hook = RecordingHook::default();
        launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[o],
            &mut hook,
        )
        .unwrap();
        for i in 0..32u64 {
            let expect = if i % 2 == 0 { 11 } else { 12 };
            assert_eq!(mem.load(o + i, 1).unwrap(), expect, "byte {i}");
        }
        // One warp, four blocks visited: entry, then, else, join.
        assert_eq!(hook.bb_entries.len(), 4);
    }

    /// Uniform branch: only the taken side's block is visited.
    #[test]
    fn uniform_branch_skips_untaken_block() {
        for (flag, expect_byte) in [(1u64, 1u8), (0u64, 2u8)] {
            let b = KernelBuilder::new("uniform");
            let out = b.param(0);
            let f = b.param(1);
            let tid = b.special(SpecialReg::GlobalTid);
            let addr = b.add(out, tid);
            let p = b.setp(CmpOp::Ne, f, 0u64);
            b.if_then_else(
                p,
                |b| {
                    b.store_global(addr, 1u64, MemWidth::B1);
                },
                |b| {
                    b.store_global(addr, 2u64, MemWidth::B1);
                },
            );
            let k = b.finish();
            let mut mem = DeviceMemory::new();
            let (_, o) = mem.alloc(32);
            let mut hook = RecordingHook::default();
            launch(
                &mut mem,
                &k,
                LaunchConfig::new(1u32, 32u32),
                &[o, flag],
                &mut hook,
            )
            .unwrap();
            assert_eq!(mem.load(o, 1).unwrap(), u64::from(expect_byte));
            // Entry block + exactly one of the two branch blocks.
            assert_eq!(hook.bb_entries.len(), 2, "flag {flag}");
        }
    }

    /// Execution counters: a divergent `If` records one divergence and one
    /// reconvergence, and memory accesses classify by coalescing.
    #[test]
    fn counters_track_divergence_and_coalescing() {
        let b = KernelBuilder::new("ctr");
        let out = b.param(0);
        let tid = b.special(SpecialReg::GlobalTid);
        let bit = b.and(tid, 1u64);
        let addr = b.add(out, tid);
        let p = b.setp(CmpOp::Eq, bit, 0u64);
        b.if_then_else(
            p,
            |b| {
                b.store_global(addr, 1u64, MemWidth::B1);
            },
            |b| {
                b.store_global(addr, 2u64, MemWidth::B1);
            },
        );
        // Scattered load: stride 64 bytes puts every lane in its own
        // 32-byte segment.
        let sc = b.add(out, b.mul(tid, 64u64));
        let _ = b.load_global(sc, MemWidth::B1);
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(64 * 32);
        let stats = launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[o],
            &mut NullHook,
        )
        .unwrap();
        let c = stats.counters;
        assert_eq!(c.instructions, stats.instructions);
        assert_eq!(c.divergence_events, 1);
        assert_eq!(c.reconvergences, 1);
        assert!(c.branches >= 1);
        assert_eq!(c.mem_accesses, 3);
        // Each side's store covers 32 consecutive bytes (16 lanes, stride
        // 2) = 1 segment; the scattered load costs 32 transactions.
        assert_eq!(c.mem_transactions, 1 + 1 + 32);
        assert_eq!(c.coalesced_accesses, 2);
        assert_eq!(c.serialized_accesses, 1);
        assert_eq!(c.bank_conflicts, 0);
    }

    /// Execution counters on a divergent loop: lane `i` of 32 iterates `i`
    /// times, shedding one lane per iteration — 31 divergence events, one
    /// reconvergence when the loop drains, 32 condition evaluations.
    #[test]
    fn counters_track_loop_divergence() {
        let b = KernelBuilder::new("loopctr");
        let tid = b.special(SpecialReg::GlobalTid);
        let i = b.mov(0u64);
        b.while_loop(
            |b| b.setp(CmpOp::LtU, i, tid),
            |b| {
                let ip = b.add(i, 1u64);
                b.assign(i, ip);
            },
        );
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let stats = launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[],
            &mut NullHook,
        )
        .unwrap();
        let c = stats.counters;
        assert_eq!(c.branches, 32);
        assert_eq!(c.divergence_events, 31);
        assert_eq!(c.reconvergences, 1);
    }

    /// A uniform branch and a uniform (all-lanes-exit-together) loop count
    /// no divergence and no reconvergence.
    #[test]
    fn counters_uniform_control_flow_is_convergent() {
        let b = KernelBuilder::new("uni");
        let out = b.param(0);
        let tid = b.special(SpecialReg::GlobalTid);
        let addr = b.add(out, tid);
        let p = b.setp(CmpOp::LtU, tid, 64u64);
        b.if_then_else(
            p,
            |b| {
                b.store_global(addr, 1u64, MemWidth::B1);
            },
            |b| {
                b.store_global(addr, 2u64, MemWidth::B1);
            },
        );
        let i = b.mov(0u64);
        b.while_loop(
            |b| b.setp(CmpOp::LtU, i, 3u64),
            |b| {
                let ip = b.add(i, 1u64);
                b.assign(i, ip);
            },
        );
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(32);
        let stats = launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[o],
            &mut NullHook,
        )
        .unwrap();
        let c = stats.counters;
        // One If + four loop condition evaluations.
        assert_eq!(c.branches, 5);
        assert_eq!(c.divergence_events, 0);
        assert_eq!(c.reconvergences, 0);
    }

    /// SIMT loop divergence: lane `i` iterates `i` times; the warp iterates
    /// max(i) times and each lane accumulates its own count.
    #[test]
    fn divergent_loop_trip_counts() {
        let b = KernelBuilder::new("loop");
        let out = b.param(0);
        let tid = b.special(SpecialReg::GlobalTid);
        let addr = b.add(out, b.mul(tid, 8u64));
        let i = b.mov(0u64);
        b.while_loop(
            |b| b.setp(CmpOp::LtU, i, tid),
            |b| {
                let v = b.load_global(addr, MemWidth::B8);
                let v1 = b.add(v, 1u64);
                b.store_global(addr, v1, MemWidth::B8);
                let ip = b.add(i, 1u64);
                b.assign(i, ip);
            },
        );
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(8 * 32);
        launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[o],
            &mut NullHook,
        )
        .unwrap();
        for t in 0..32u64 {
            assert_eq!(mem.load(o + t * 8, 8).unwrap(), t, "lane {t}");
        }
    }

    /// Shared memory + barrier: block-wide reversal via shared staging.
    #[test]
    fn shared_memory_barrier_reversal() {
        let b = KernelBuilder::new("reverse");
        b.set_shared_bytes(32 * 8);
        let inp = b.param(0);
        let out = b.param(1);
        let tid = b.special(SpecialReg::TidX);
        let off = b.mul(tid, 8u64);
        let v = b.load_global(b.add(inp, off), MemWidth::B8);
        b.store_shared(off, v, MemWidth::B8);
        b.sync();
        let rev = b.sub(31u64, tid);
        let roff = b.mul(rev, 8u64);
        let rv = b.load_shared(roff, MemWidth::B8);
        b.store_global(b.add(out, off), rv, MemWidth::B8);
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, a) = mem.alloc(8 * 32);
        let (_, o) = mem.alloc(8 * 32);
        for i in 0..32u64 {
            mem.store(a + i * 8, 8, 100 + i).unwrap();
        }
        launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[a, o],
            &mut NullHook,
        )
        .unwrap();
        for i in 0..32u64 {
            assert_eq!(mem.load(o + i * 8, 8).unwrap(), 100 + (31 - i));
        }
    }

    /// Barrier across multiple warps in one CTA: warp 1's writes must be
    /// visible to warp 0 after the sync.
    #[test]
    fn barrier_orders_warps_within_cta() {
        let b = KernelBuilder::new("xwarp");
        b.set_shared_bytes(64 * 8);
        let out = b.param(0);
        let tid = b.special(SpecialReg::TidX);
        let off = b.mul(tid, 8u64);
        // Each thread stages tid*2 into shared.
        let v2 = b.mul(tid, 2u64);
        b.store_shared(off, v2, MemWidth::B8);
        b.sync();
        // Each thread reads its partner from the *other* warp.
        let partner = b.xor(tid, 32u64);
        let pv = b.load_shared(b.mul(partner, 8u64), MemWidth::B8);
        b.store_global(b.add(out, off), pv, MemWidth::B8);
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(8 * 64);
        launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 64u32),
            &[o],
            &mut NullHook,
        )
        .unwrap();
        for t in 0..64u64 {
            assert_eq!(mem.load(o + t * 8, 8).unwrap(), (t ^ 32) * 2, "thread {t}");
        }
    }

    /// Multi-CTA launch writes disjoint slices.
    #[test]
    fn multi_cta_launch() {
        let b = KernelBuilder::new("grid");
        let out = b.param(0);
        let tid = b.special(SpecialReg::GlobalTid);
        let cta = b.special(SpecialReg::CtaidX);
        b.store_global(b.add(out, b.mul(tid, 8u64)), cta, MemWidth::B8);
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(8 * 128);
        let stats = launch(
            &mut mem,
            &k,
            LaunchConfig::new(4u32, 32u32),
            &[o],
            &mut NullHook,
        )
        .unwrap();
        assert_eq!(stats.ctas, 4);
        assert_eq!(stats.warps, 4);
        for t in 0..128u64 {
            assert_eq!(mem.load(o + t * 8, 8).unwrap(), t / 32);
        }
    }

    /// Predicated (guarded) stores execute only in passing lanes while the
    /// block trace stays uniform.
    #[test]
    fn predicated_store_is_control_flow_invisible() {
        let b = KernelBuilder::new("pred");
        let out = b.param(0);
        let tid = b.special(SpecialReg::GlobalTid);
        let addr = b.add(out, tid);
        let p = b.setp(CmpOp::LtU, tid, 5u64);
        b.store_global_if(p, true, addr, 9u64, MemWidth::B1);
        let k = b.finish();

        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(32);
        let mut hook = RecordingHook::default();
        launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[o],
            &mut hook,
        )
        .unwrap();
        for i in 0..32u64 {
            assert_eq!(mem.load(o + i, 1).unwrap(), u64::from(i < 5) * 9);
        }
        // Single block, single visit — predication is invisible.
        assert_eq!(hook.bb_entries.len(), 1);
        // The store event carries exactly the 5 passing lanes.
        assert_eq!(hook.accesses.len(), 1);
        assert_eq!(hook.accesses[0].1.lane_addrs.len(), 5);
    }

    /// Zero-thread launches are rejected.
    #[test]
    fn empty_launch_rejected() {
        let b = KernelBuilder::new("nop");
        let _ = b.mov(0u64);
        let k = b.finish();
        let mut mem = DeviceMemory::new();
        let err = launch(
            &mut mem,
            &k,
            LaunchConfig::new(0u32, 32u32),
            &[],
            &mut NullHook,
        );
        assert_eq!(err.unwrap_err(), ExecError::EmptyLaunch);
    }

    /// The fuel limit stops infinite loops.
    #[test]
    fn runaway_loop_exhausts_fuel() {
        let b = KernelBuilder::new("spin");
        let one = b.mov(1u64);
        b.while_loop(
            |b| b.setp(CmpOp::Eq, one, 1u64),
            |b| {
                let _ = b.add(one, 0u64);
            },
        );
        let k = b.finish();
        let mut mem = DeviceMemory::new();
        let err = launch_with_options(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[],
            &mut NullHook,
            LaunchOptions {
                fuel: 10_000,
                ..LaunchOptions::default()
            },
        );
        assert_eq!(err.unwrap_err(), ExecError::FuelExhausted);
    }

    /// An expired deadline stops a runaway loop with `Cancelled` — on both
    /// interpreters, well before the (huge) fuel budget would.
    #[test]
    fn expired_deadline_cancels_runaway_loop() {
        let b = KernelBuilder::new("spin");
        let one = b.mov(1u64);
        b.while_loop(
            |b| b.setp(CmpOp::Eq, one, 1u64),
            |b| {
                let _ = b.add(one, 0u64);
            },
        );
        let k = b.finish();
        for interpreter in [Interpreter::Lowered, Interpreter::Oracle] {
            let mut mem = DeviceMemory::new();
            let token = crate::cancel::CancelToken::new();
            let err = launch_with_options(
                &mut mem,
                &k,
                LaunchConfig::new(1u32, 32u32),
                &[],
                &mut NullHook,
                LaunchOptions {
                    cancel: Some(token.deadline_in(std::time::Duration::from_millis(5))),
                    interpreter,
                    ..LaunchOptions::default()
                },
            );
            assert_eq!(
                err.unwrap_err(),
                ExecError::Cancelled,
                "{interpreter:?} must abandon the launch at a block boundary"
            );
        }
    }

    /// A token that fired before launch bails out before `kernel_begin`:
    /// the hook observes no events at all.
    #[test]
    fn pre_cancelled_token_emits_no_events() {
        let b = KernelBuilder::new("noop");
        let _ = b.mov(0u64);
        let k = b.finish();
        for interpreter in [Interpreter::Lowered, Interpreter::Oracle] {
            let token = crate::cancel::CancelToken::new();
            token.cancel();
            let mut mem = DeviceMemory::new();
            let mut hook = RecordingHook::default();
            let err = launch_with_options(
                &mut mem,
                &k,
                LaunchConfig::new(1u32, 32u32),
                &[],
                &mut hook,
                LaunchOptions {
                    cancel: Some(token.clone()),
                    interpreter,
                    ..LaunchOptions::default()
                },
            );
            assert_eq!(err.unwrap_err(), ExecError::Cancelled);
            assert!(
                hook.kernels.is_empty(),
                "{interpreter:?} must not announce a cancelled launch"
            );
        }
    }

    /// Out-of-bounds access reports the faulting location.
    #[test]
    fn oob_access_reports_location() {
        let b = KernelBuilder::new("oob");
        let out = b.param(0);
        let big = b.add(out, 1_000_000u64);
        b.store_global(big, 1u64, MemWidth::B8);
        let k = b.finish();
        let mut mem = DeviceMemory::new();
        let (_, o) = mem.alloc(64);
        let err = launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[o],
            &mut NullHook,
        )
        .unwrap_err();
        match err {
            ExecError::Memory { space, .. } => assert_eq!(space, crate::isa::MemSpace::Global),
            other => panic!("expected memory fault, got {other:?}"),
        }
    }

    /// Missing kernel arguments surface as ParamOutOfRange.
    #[test]
    fn missing_param_reported() {
        let b = KernelBuilder::new("param");
        let _ = b.param(2);
        let k = b.finish();
        let mut mem = DeviceMemory::new();
        let err = launch(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[0],
            &mut NullHook,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ExecError::ParamOutOfRange {
                index: 2,
                provided: 1
            }
        );
    }

    /// Instrumented and uninstrumented runs produce identical memory — the
    /// "original behaviour remains unaffected" DBI property.
    #[test]
    fn instrumentation_does_not_perturb_semantics() {
        let build = || {
            let b = KernelBuilder::new("same");
            let out = b.param(0);
            let tid = b.special(SpecialReg::GlobalTid);
            let addr = b.add(out, b.mul(tid, 8u64));
            let sq = b.mul(tid, tid);
            b.store_global(addr, sq, MemWidth::B8);
            b.finish()
        };
        let run = |hook: &mut dyn KernelHook| {
            let mut mem = DeviceMemory::new();
            let (_, o) = mem.alloc(8 * 64);
            launch(
                &mut mem,
                &build(),
                LaunchConfig::new(2u32, 32u32),
                &[o],
                hook,
            )
            .unwrap();
            (0..64u64)
                .map(|i| mem.load(o + i * 8, 8).unwrap())
                .collect::<Vec<_>>()
        };
        let plain = run(&mut NullHook);
        let mut rec = RecordingHook::default();
        let traced = run(&mut rec);
        assert_eq!(plain, traced);
        assert!(!rec.accesses.is_empty());
    }
}
