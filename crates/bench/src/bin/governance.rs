//! Resource-governance overhead: the budget checks, the cancellation
//! polls, and the deadline arithmetic must cost (almost) nothing when
//! they never fire.
//!
//! Runs the aes-ttable detection twice — once ungoverned (default budget,
//! no cancel token) and once with every governance feature armed but
//! sized so none trips (generous explicit budgets, a one-hour deadline,
//! a live cancel token polled at every basic-block stride) — and reports
//! the wall-clock overhead. The acceptance bar is < 2 %.
//!
//! ```text
//! cargo run --release -p owl-bench --bin governance
//! ```

use owl_bench::write_bench_json;
use owl_core::{detect, detect_with_cancel, CancelToken, OwlConfig, Verdict};
use owl_workloads::aes::AesTTable;
use std::time::{Duration, Instant};

/// Best-of-N iterations, like the hot-path benches: the minimum is the
/// least noisy estimator of the true cost on a shared machine.
const ITERS: usize = 5;
const RUNS: usize = 10;

#[derive(serde::Serialize)]
struct GovernanceBench {
    workload: String,
    runs: usize,
    iters: usize,
    baseline_ms: f64,
    governed_ms: f64,
    overhead_pct: f64,
}

fn best_of<F: FnMut() -> Verdict>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let start = Instant::now();
        let verdict = f();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(verdict, Verdict::Leaky, "aes-ttable must stay leaky");
        best = best.min(elapsed);
    }
    best
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aes = AesTTable::new(32);
    let keys = [[0u8; 16], [0xffu8; 16], *b"owl-sca-detector"];

    let baseline_config = OwlConfig {
        runs: RUNS,
        force_analysis: true,
        ..OwlConfig::default()
    };
    let governed_config = OwlConfig::builder()
        .runs(RUNS)
        .force_analysis(true)
        .max_mem_events(u64::MAX / 2)
        .max_allocations(u64::MAX / 2)
        .max_evidence_bytes(usize::MAX / 2)
        .deadline(Duration::from_secs(3600))
        .validate()?;

    let baseline_ms = best_of(|| {
        detect(&aes, &keys, &baseline_config)
            .expect("baseline detection")
            .verdict
    });
    let governed_ms = best_of(|| {
        let token = CancelToken::new();
        detect_with_cancel(&aes, &keys, &governed_config, Some(&token))
            .expect("governed detection")
            .verdict
    });
    let overhead_pct = (governed_ms - baseline_ms) / baseline_ms * 100.0;

    println!("Governance overhead on aes-ttable ({RUNS} runs, best of {ITERS})");
    println!("  baseline  {baseline_ms:8.2} ms");
    println!("  governed  {governed_ms:8.2} ms  (budgets + deadline + cancel token armed)");
    println!("  overhead  {overhead_pct:+8.2} %");

    let doc = GovernanceBench {
        workload: "aes-ttable".into(),
        runs: RUNS,
        iters: ITERS,
        baseline_ms,
        governed_ms,
        overhead_pct,
    };
    let path = write_bench_json("governance", &doc)?;
    println!("  wrote {}", path.display());
    Ok(())
}
