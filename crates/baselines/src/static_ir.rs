//! A naive static IR taint analyser (the haybale-pitchfork stand-in).
//!
//! The paper applies an LLVM-IR analysis to CUDA kernels and observes "a
//! substantial number of false positives, where … it erroneously flags
//! array accesses determined by thread IDs (a common practice in CUDA
//! programming) … [and] misidentifies control flow leaks as it fails to
//! account for predicate execution". This module reproduces that failure
//! mode honestly: a flow-insensitive taint analysis over the kernel IR
//! that treats *any* non-constant address or branch as potentially
//! secret-dependent, with the taint source recorded so false positives can
//! be counted.

use owl_gpu::isa::{InstOp, Operand, Reg, SpecialReg};
use owl_gpu::program::{KernelProgram, Region, Stmt};
use std::collections::BTreeSet;

/// What a value may be derived from (a join-semilattice; `Data ∪ Tid`
/// dominates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Taint {
    /// Compile-time constant.
    Constant,
    /// Derived from thread/block indices only (benign in CUDA practice,
    /// but flagged by the naive analysis).
    Tid,
    /// Derived from kernel parameters or loaded data (potential secret).
    Data,
}

impl Taint {
    fn join(self, other: Taint) -> Taint {
        self.max(other)
    }
}

/// Why an instruction was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Memory access with a data-derived address.
    DataAddress,
    /// Memory access whose address only depends on thread indices — the
    /// classic CUDA false positive.
    TidAddress,
    /// A branch predicate that depends on data.
    DataBranch,
    /// A branch predicate that depends only on thread indices.
    TidBranch,
}

/// One static finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticFinding {
    /// Basic block of the flagged instruction (or branch condition block).
    pub bb: u32,
    /// Instruction index within the block; `u32::MAX` for region branches.
    pub inst_idx: u32,
    /// The reason.
    pub kind: FindingKind,
}

/// The analysis result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticReport {
    /// All findings, in block order.
    pub findings: Vec<StaticFinding>,
}

impl StaticReport {
    /// Findings of one kind.
    pub fn count(&self, kind: FindingKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }

    /// Findings that a thread-id-aware analysis would *not* have raised —
    /// the false-positive surface the paper describes.
    pub fn tid_only(&self) -> usize {
        self.count(FindingKind::TidAddress) + self.count(FindingKind::TidBranch)
    }
}

struct Analyzer<'p> {
    program: &'p KernelProgram,
    regs: Vec<Taint>,
    preds: Vec<Taint>,
    findings: BTreeSet<(u32, u32, u8)>,
}

impl<'p> Analyzer<'p> {
    fn operand(&self, op: Operand) -> Taint {
        match op {
            Operand::Imm(_) => Taint::Constant,
            Operand::Reg(Reg(r)) => self.regs[usize::from(r)],
        }
    }

    fn set_reg(&mut self, r: Reg, t: Taint) -> bool {
        let cur = &mut self.regs[usize::from(r.0)];
        let joined = cur.join(t);
        let changed = joined != *cur;
        *cur = joined;
        changed
    }

    fn pass(&mut self) -> bool {
        let mut changed = false;
        for block in &self.program.blocks {
            for inst in &block.insts {
                changed |= self.transfer(&inst.op);
            }
        }
        changed
    }

    fn transfer(&mut self, op: &InstOp) -> bool {
        match op {
            InstOp::Mov { dst, src } => {
                let t = self.operand(*src);
                self.set_reg(*dst, t)
            }
            InstOp::Bin { dst, a, b, .. } => {
                let t = self.operand(*a).join(self.operand(*b));
                self.set_reg(*dst, t)
            }
            InstOp::Un { dst, a, .. } => {
                let t = self.operand(*a);
                self.set_reg(*dst, t)
            }
            InstOp::SetP { pred, a, b, .. } => {
                let t = self.operand(*a).join(self.operand(*b));
                let cur = &mut self.preds[usize::from(pred.0)];
                let joined = cur.join(t);
                let changed = joined != *cur;
                *cur = joined;
                changed
            }
            InstOp::Sel { dst, pred, a, b } => {
                let t = self.preds[usize::from(pred.0)]
                    .join(self.operand(*a))
                    .join(self.operand(*b));
                self.set_reg(*dst, t)
            }
            // Loaded data is data (could carry secrets); the analysis has
            // no value model, so every load taints.
            InstOp::Ld { dst, .. } => self.set_reg(*dst, Taint::Data),
            InstOp::St { .. } => false,
            // Kernel parameters are attacker-relevant inputs.
            InstOp::LdParam { dst, .. } => self.set_reg(*dst, Taint::Data),
            InstOp::Atomic { dst, .. } => self.set_reg(*dst, Taint::Data),
            InstOp::Shfl { dst, src, .. } => {
                let t = self.regs[usize::from(src.0)];
                self.set_reg(*dst, t)
            }
            InstOp::Ballot { dst, pred } => {
                let t = self.preds[usize::from(pred.0)];
                self.set_reg(*dst, t)
            }
            InstOp::Tex { dst, .. } => self.set_reg(*dst, Taint::Data),
            InstOp::Special { dst, sr } => {
                let t = match sr {
                    SpecialReg::TidX
                    | SpecialReg::TidY
                    | SpecialReg::TidZ
                    | SpecialReg::CtaidX
                    | SpecialReg::CtaidY
                    | SpecialReg::CtaidZ
                    | SpecialReg::LaneId
                    | SpecialReg::WarpId
                    | SpecialReg::GlobalTid => Taint::Tid,
                    _ => Taint::Constant,
                };
                self.set_reg(*dst, t)
            }
        }
    }

    fn flag_accesses(&mut self) {
        for (bb, block) in self.program.blocks.iter().enumerate() {
            for (idx, inst) in block.insts.iter().enumerate() {
                let addr = match &inst.op {
                    InstOp::Ld { addr, .. } => Some(*addr),
                    InstOp::St { addr, .. } => Some(*addr),
                    InstOp::Atomic { addr, .. } => Some(*addr),
                    // The naive analysis treats the x coordinate as the
                    // address proxy of a texture fetch.
                    InstOp::Tex { x, .. } => Some(*x),
                    _ => None,
                };
                if let Some(addr) = addr {
                    let kind = match self.operand(addr) {
                        Taint::Data => 0u8,
                        Taint::Tid => 1,
                        Taint::Constant => continue,
                    };
                    self.findings.insert((bb as u32, idx as u32, kind));
                }
            }
        }
    }

    fn flag_branches(&mut self, region: &Region) {
        for stmt in &region.0 {
            match stmt {
                Stmt::If {
                    pred,
                    then_region,
                    else_region,
                } => {
                    self.flag_pred(*pred);
                    self.flag_branches(then_region);
                    self.flag_branches(else_region);
                }
                Stmt::While {
                    cond_block,
                    pred,
                    body,
                } => {
                    let _ = cond_block;
                    self.flag_pred(*pred);
                    self.flag_branches(body);
                }
                Stmt::Block(_) | Stmt::Sync => {}
            }
        }
    }

    fn flag_pred(&mut self, p: owl_gpu::isa::Pred) {
        let kind = match self.preds[usize::from(p.0)] {
            Taint::Data => 2u8,
            Taint::Tid => 3,
            Taint::Constant => return,
        };
        // Branch findings anchor to the predicate id (no block).
        self.findings.insert((u32::MAX, u32::from(p.0), kind));
    }
}

/// Analyses a kernel statically, without executing it and without any
/// model of predicated execution or warp aggregation.
pub fn analyze_kernel(program: &KernelProgram) -> StaticReport {
    let mut a = Analyzer {
        program,
        regs: vec![Taint::Constant; usize::from(program.num_regs)],
        preds: vec![Taint::Constant; usize::from(program.num_preds)],
        findings: BTreeSet::new(),
    };
    // Fixpoint (loops feed registers back).
    while a.pass() {}
    a.flag_accesses();
    a.flag_branches(&program.body);
    StaticReport {
        findings: a
            .findings
            .iter()
            .map(|&(bb, inst_idx, kind)| StaticFinding {
                bb: if bb == u32::MAX { 0 } else { bb },
                inst_idx,
                kind: match kind {
                    0 => FindingKind::DataAddress,
                    1 => FindingKind::TidAddress,
                    2 => FindingKind::DataBranch,
                    _ => FindingKind::TidBranch,
                },
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_gpu::build::KernelBuilder;
    use owl_gpu::isa::{CmpOp, MemWidth};

    /// A perfectly clean kernel: out[tid] = in[tid] * 2.
    fn clean_kernel() -> KernelProgram {
        let b = KernelBuilder::new("clean");
        let x = b.param(0);
        let out = b.param(1);
        let tid = b.special(SpecialReg::GlobalTid);
        let v = b.load_global(b.add(x, b.mul(tid, 8u64)), MemWidth::B8);
        b.store_global(b.add(out, b.mul(tid, 8u64)), b.mul(v, 2u64), MemWidth::B8);
        b.finish()
    }

    #[test]
    fn flags_tid_indexed_accesses_on_clean_kernels() {
        // The false-positive mechanism: the clean kernel's accesses are
        // all flagged because their addresses are not constants. (The
        // address mixes a Data-tainted base pointer with a Tid index, so
        // the naive lattice reports Data.)
        let report = analyze_kernel(&clean_kernel());
        assert!(report.count(FindingKind::DataAddress) >= 2, "{report:?}");
    }

    #[test]
    fn pure_tid_addresses_are_flagged_as_tid() {
        // Shared-memory staging addressed purely by tid: flagged TidAddress.
        let b = KernelBuilder::new("stage");
        b.set_shared_bytes(256 * 8);
        let tid = b.special(SpecialReg::TidX);
        b.store_shared(b.mul(tid, 8u64), 7u64, MemWidth::B8);
        let report = analyze_kernel(&b.finish());
        assert_eq!(report.count(FindingKind::TidAddress), 1, "{report:?}");
        assert_eq!(report.tid_only(), 1);
    }

    #[test]
    fn tid_guard_branches_are_flagged() {
        // The ubiquitous `if (tid < n)` guard: n is a parameter (Data), so
        // the naive analysis flags the branch as data-dependent — on every
        // kernel in this repository.
        let b = KernelBuilder::new("guarded");
        let n = b.param(0);
        let tid = b.special(SpecialReg::GlobalTid);
        let p = b.setp(CmpOp::LtU, tid, n);
        b.if_then(p, |b| {
            let _ = b.mov(1u64);
        });
        let report = analyze_kernel(&b.finish());
        assert_eq!(report.count(FindingKind::DataBranch), 1, "{report:?}");
    }

    #[test]
    fn constant_accesses_are_not_flagged() {
        let b = KernelBuilder::new("constaddr");
        b.set_shared_bytes(64);
        b.store_shared(0u64, 1u64, MemWidth::B8);
        let report = analyze_kernel(&b.finish());
        assert!(report.findings.is_empty(), "{report:?}");
    }

    #[test]
    fn loop_carried_taint_reaches_fixpoint() {
        // i starts constant but accumulates a loaded value inside the loop:
        // the address using i must end up Data-tainted.
        let b = KernelBuilder::new("loopcarry");
        let base = b.param(0);
        let i = b.mov(0u64);
        b.while_loop(
            |b| b.setp(CmpOp::LtU, i, 10u64),
            |b| {
                let v = b.load_global(base, MemWidth::B8);
                b.assign(i, b.add(i, v));
            },
        );
        b.store_global(b.add(base, i), 0u64, MemWidth::B8);
        let report = analyze_kernel(&b.finish());
        assert!(report.count(FindingKind::DataAddress) >= 1);
        assert!(report.count(FindingKind::DataBranch) >= 1);
    }

    #[test]
    fn static_analysis_false_positives_vs_owl_on_relu() {
        // The paper's RQ3 point in one test: the naive static tool flags
        // the leak-free relu kernel; Owl (dynamic, warp-aware) must not.
        // Owl's verdict for relu is established in the integration tests;
        // here we pin the static side.
        let report = analyze_kernel(&clean_kernel());
        assert!(!report.findings.is_empty());
    }
}
