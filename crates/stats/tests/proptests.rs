//! Property-based tests for the statistical core.

use owl_stats::{ks_two_sample, welch_t_test, Ecdf, Histogram, WeightedSamples};
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = WeightedSamples> {
    prop::collection::vec((-1_000i64..1_000, 1u64..20), 1..64)
        .prop_map(|v| WeightedSamples::from_pairs(v.into_iter().map(|(x, w)| (x as f64, w))))
}

proptest! {
    /// An ECDF is monotone non-decreasing and bounded by [0, 1].
    #[test]
    fn ecdf_is_monotone_and_bounded(s in arb_samples()) {
        let e = Ecdf::from_samples(&s);
        let mut prev = 0.0;
        for &(x, f) in e.steps() {
            prop_assert!(f >= prev, "non-monotone at {x}");
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        prop_assert!((prev - 1.0).abs() < 1e-12, "ECDF must end at 1");
    }

    /// The KS distance is symmetric and within [0, 1].
    #[test]
    fn ks_statistic_symmetric_and_bounded(a in arb_samples(), b in arb_samples()) {
        let xy = ks_two_sample(&a, &b, 0.95);
        let yx = ks_two_sample(&b, &a, 0.95);
        prop_assert!((xy.statistic - yx.statistic).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&xy.statistic));
        prop_assert!((0.0..=1.0).contains(&xy.p_value));
    }

    /// A sample never deviates from itself.
    #[test]
    fn ks_self_test_never_rejects(a in arb_samples()) {
        let out = ks_two_sample(&a, &a, 0.95);
        prop_assert_eq!(out.statistic, 0.0);
        prop_assert!(!out.rejected);
    }

    /// Splitting one sample into scaled copies keeps the distribution, so the
    /// KS statistic of a sample vs. its k-fold duplicate is zero.
    #[test]
    fn ks_invariant_under_weight_scaling(a in arb_samples(), k in 2u64..5) {
        let scaled = WeightedSamples::from_pairs(
            a.pairs().iter().map(|&(x, w)| (x, w * k)),
        );
        let out = ks_two_sample(&a, &scaled, 0.95);
        prop_assert_eq!(out.statistic, 0.0);
    }

    /// Merging histograms is commutative and preserves totals.
    #[test]
    fn histogram_merge_commutes(
        a in prop::collection::vec((0u64..100, 1u64..10), 0..32),
        b in prop::collection::vec((0u64..100, 1u64..10), 0..32),
    ) {
        let ha: Histogram = a.iter().copied().collect();
        let hb: Histogram = b.iter().copied().collect();
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.total(), ha.total() + hb.total());
    }

    /// Welch's t statistic is antisymmetric in its arguments.
    #[test]
    fn welch_antisymmetric(a in arb_samples(), b in arb_samples()) {
        let xy = welch_t_test(&a, &b, 4.5);
        let yx = welch_t_test(&b, &a, 4.5);
        if xy.statistic.is_finite() {
            prop_assert!((xy.statistic + yx.statistic).abs() < 1e-9);
        }
        prop_assert_eq!(xy.rejected, yx.rejected);
    }

    /// `eval` agrees with the brute-force definition of the ECDF.
    #[test]
    fn ecdf_eval_matches_definition(s in arb_samples(), t in -1_200i64..1_200) {
        let e = Ecdf::from_samples(&s);
        let t = t as f64;
        let le: u64 = s.pairs().iter().filter(|&&(x, _)| x <= t).map(|&(_, w)| w).sum();
        let expected = le as f64 / s.total_weight() as f64;
        prop_assert!((e.eval(t) - expected).abs() < 1e-12);
    }
}
