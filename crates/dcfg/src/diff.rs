//! Myers O(ND) sequence alignment.
//!
//! The paper's evidence-merging step (§VII-A) "utilize[s] the Myers
//! algorithm to compare two trace sequences … then align[s] the sequences
//! referring to kernel invocations". This module implements the greedy
//! O(ND) Myers diff over arbitrary `PartialEq` items and exposes the result
//! as an alignment: matched pairs plus one-sided insertions/deletions.

/// One aligned step between two sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// `a[i]` matches `b[j]`.
    Match(usize, usize),
    /// `a[i]` has no counterpart in `b` (a deletion).
    DeleteA(usize),
    /// `b[j]` has no counterpart in `a` (an insertion).
    InsertB(usize),
}

/// Aligns two sequences with the Myers O(ND) algorithm, returning the edit
/// script as a sequence of [`AlignOp`]s in order.
///
/// The result always covers every index of both inputs exactly once, and
/// matched pairs appear in increasing order on both sides.
///
/// # Example
///
/// ```
/// use owl_dcfg::diff::{myers_align, AlignOp};
///
/// let ops = myers_align(&[1, 2, 3], &[2, 3, 4]);
/// assert_eq!(ops, vec![
///     AlignOp::DeleteA(0),
///     AlignOp::Match(1, 0),
///     AlignOp::Match(2, 1),
///     AlignOp::InsertB(2),
/// ]);
/// ```
pub fn myers_align<T: PartialEq>(a: &[T], b: &[T]) -> Vec<AlignOp> {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return (0..m).map(AlignOp::InsertB).collect();
    }
    if m == 0 {
        return (0..n).map(AlignOp::DeleteA).collect();
    }

    let max = n + m;
    let offset = max as isize;
    // v[k + offset] = furthest x on diagonal k.
    let mut v = vec![0isize; 2 * max + 1];
    // Snapshots of v per depth d, for backtracking.
    let mut trace: Vec<Vec<isize>> = Vec::new();

    'outer: {
        for d in 0..=(max as isize) {
            trace.push(v.clone());
            let mut k = -d;
            while k <= d {
                let idx = (k + offset) as usize;
                let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                    v[idx + 1] // move down (insertion from b)
                } else {
                    v[idx - 1] + 1 // move right (deletion from a)
                };
                let mut y = x - k;
                while (x as usize) < n && (y as usize) < m && a[x as usize] == b[y as usize] {
                    x += 1;
                    y += 1;
                }
                v[idx] = x;
                if x as usize >= n && y as usize >= m {
                    break 'outer;
                }
                k += 2;
            }
        }
        unreachable!("Myers always terminates within n+m edits");
    }

    // Backtrack from (n, m) through the per-depth snapshots. `trace[d]`
    // holds the diagonal frontier *before* depth-d processing, i.e. the
    // depth-(d-1) result, which is exactly what the classic backtracking
    // walk needs.
    let mut ops_rev: Vec<AlignOp> = Vec::new();
    let (mut x, mut y) = (n as isize, m as isize);
    for d in (0..trace.len() as isize).rev() {
        let vd = &trace[d as usize];
        let k = x - y;
        let idx = (k + offset) as usize;
        let down = k == -d || (k != d && vd[idx - 1] < vd[idx + 1]);
        let prev_k = if down { k + 1 } else { k - 1 };
        let prev_x = vd[(prev_k + offset) as usize];
        let prev_y = prev_x - prev_k;

        // Diagonal snake back to the edit point.
        while x > prev_x && y > prev_y {
            x -= 1;
            y -= 1;
            ops_rev.push(AlignOp::Match(x as usize, y as usize));
        }
        if d > 0 {
            if down {
                ops_rev.push(AlignOp::InsertB(prev_y as usize));
            } else {
                ops_rev.push(AlignOp::DeleteA(prev_x as usize));
            }
            x = prev_x;
            y = prev_y;
        }
    }
    debug_assert_eq!(x, 0);
    debug_assert_eq!(y, 0);
    ops_rev.reverse();
    ops_rev
}

/// Validates that an alignment is a complete, ordered cover of both inputs;
/// used by tests and available for debugging.
pub fn is_valid_alignment(ops: &[AlignOp], n: usize, m: usize) -> bool {
    let (mut x, mut y) = (0usize, 0usize);
    for op in ops {
        match *op {
            AlignOp::Match(i, j) => {
                if i != x || j != y {
                    return false;
                }
                x += 1;
                y += 1;
            }
            AlignOp::DeleteA(i) => {
                if i != x {
                    return false;
                }
                x += 1;
            }
            AlignOp::InsertB(j) => {
                if j != y {
                    return false;
                }
                y += 1;
            }
        }
    }
    x == n && y == m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches_are_equal<T: PartialEq + std::fmt::Debug>(a: &[T], b: &[T], ops: &[AlignOp]) {
        for op in ops {
            if let AlignOp::Match(i, j) = *op {
                assert_eq!(a[i], b[j], "mismatched pair at ({i}, {j})");
            }
        }
    }

    #[test]
    fn identical_sequences_all_match() {
        let a = [1, 2, 3, 4];
        let ops = myers_align(&a, &a);
        assert!(is_valid_alignment(&ops, 4, 4));
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, AlignOp::Match(..)))
                .count(),
            4
        );
    }

    #[test]
    fn empty_sequences() {
        assert!(myers_align::<i32>(&[], &[]).is_empty());
        assert_eq!(
            myers_align(&[], &[1, 2]),
            vec![AlignOp::InsertB(0), AlignOp::InsertB(1)]
        );
        assert_eq!(
            myers_align(&[1, 2], &[]),
            vec![AlignOp::DeleteA(0), AlignOp::DeleteA(1)]
        );
    }

    #[test]
    fn shifted_overlap() {
        let ops = myers_align(&[1, 2, 3], &[2, 3, 4]);
        assert!(is_valid_alignment(&ops, 3, 3));
        matches_are_equal(&[1, 2, 3], &[2, 3, 4], &ops);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, AlignOp::Match(..)))
                .count(),
            2
        );
    }

    #[test]
    fn disjoint_sequences_have_no_matches() {
        let ops = myers_align(&[1, 2], &[3, 4, 5]);
        assert!(is_valid_alignment(&ops, 2, 3));
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, AlignOp::Match(..)))
                .count(),
            0
        );
    }

    #[test]
    fn single_insertion_in_middle() {
        let a = ["k1", "k2", "k3"];
        let b = ["k1", "kx", "k2", "k3"];
        let ops = myers_align(&a, &b);
        assert!(is_valid_alignment(&ops, 3, 4));
        matches_are_equal(&a, &b, &ops);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, AlignOp::Match(..)))
                .count(),
            3
        );
    }

    #[test]
    fn classic_abcabba_example() {
        // The canonical Myers example: ABCABBA vs CBABAC, LCS length 4.
        let a: Vec<char> = "ABCABBA".chars().collect();
        let b: Vec<char> = "CBABAC".chars().collect();
        let ops = myers_align(&a, &b);
        assert!(is_valid_alignment(&ops, a.len(), b.len()));
        matches_are_equal(&a, &b, &ops);
        let matches = ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Match(..)))
            .count();
        assert_eq!(matches, 4, "LCS of ABCABBA/CBABAC is 4");
    }

    #[test]
    fn repeated_elements() {
        let a = [7, 7, 7, 7];
        let b = [7, 7];
        let ops = myers_align(&a, &b);
        assert!(is_valid_alignment(&ops, 4, 2));
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, AlignOp::Match(..)))
                .count(),
            2
        );
    }
}
