//! The attributed dynamic control-flow graph (A-DCFG).
//!
//! An A-DCFG (paper §V-B) extends a dynamic CFG with per-node attributes so
//! that the traces of *all* warps of a kernel collapse into one structure:
//!
//! * each **node** is a basic block, attributed with
//!   * a [`TransitionMatrix`] of `(prev, next)` pairs — one pair per node
//!     visit, aggregated over warps (this encodes both the edges and the
//!     paper's "previous edge" information), and
//!   * per memory-access instruction, per visit ordinal `j`, a histogram
//!     `m_j` of accessed addresses aggregated over warps;
//! * each **edge** `(src, dst)` carries its traversal count;
//! * entry and exit are represented by the [`BOUNDARY`] pseudo-block, and
//!   a graph may have several entry/exit nodes (different warps may run
//!   different code regions).
//!
//! Aggregating across warps is what keeps the trace size bounded as thread
//! counts grow (the paper's Fig. 5 saturation behaviour).

use owl_stats::transition::BOUNDARY;
use owl_stats::{Histogram, TransitionMatrix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One A-DCFG node: a basic block plus its dynamic attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Node {
    /// `(prev, next)` transition counts — one tuple per visit.
    pub transitions: TransitionMatrix,
    /// Per static instruction index, per visit ordinal `j` (0-based), the
    /// aggregated address histogram `m_j`.
    pub mem: BTreeMap<u32, Vec<Histogram>>,
    /// Per instruction, per visit ordinal, the histogram of per-warp
    /// microarchitectural access costs (coalesced transactions / bank
    /// conflicts). Aggregating addresses across warps loses the per-event
    /// grouping this feature preserves, so it can catch leaks the address
    /// histograms cannot.
    pub cost: BTreeMap<u32, Vec<Histogram>>,
    /// Total visits across all warps.
    pub visits: u64,
}

impl Node {
    /// Merges another node's attributes into this one (warp overlay or
    /// evidence merge — the same aggregation, per the paper).
    pub fn merge(&mut self, other: &Node) {
        self.transitions.merge(&other.transitions);
        self.visits += other.visits;
        for (per_visit, theirs) in [(&mut self.mem, &other.mem), (&mut self.cost, &other.cost)] {
            for (&inst, their) in theirs {
                let ours = per_visit.entry(inst).or_default();
                if ours.len() < their.len() {
                    ours.resize(their.len(), Histogram::new());
                }
                for (j, h) in their.iter().enumerate() {
                    ours[j].merge(h);
                }
            }
        }
    }

    /// Multiplies every count (transitions, visits, histogram bins) by
    /// `k` — bit-identical to merging this node `k` times into an empty
    /// one.
    pub fn scale(&mut self, k: u64) {
        self.transitions.scale(k);
        self.visits *= k;
        for per_visit in self.mem.values_mut().chain(self.cost.values_mut()) {
            for h in per_visit {
                h.scale(k);
            }
        }
    }

    /// Estimated in-memory footprint in bytes (Fig. 5 accounting).
    pub fn size_bytes(&self) -> usize {
        let per_inst = |m: &BTreeMap<u32, Vec<Histogram>>| -> usize {
            m.values()
                .flat_map(|v| v.iter().map(Histogram::size_bytes))
                .sum()
        };
        self.transitions.size_bytes() + per_inst(&self.mem) + per_inst(&self.cost) + 16
    }
}

/// The A-DCFG of one kernel invocation (or of merged evidence).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Adcfg {
    /// Nodes keyed by basic-block id.
    pub nodes: BTreeMap<u32, Node>,
    /// Edge traversal counts, `(src, dst)` with [`BOUNDARY`] as the
    /// entry/exit pseudo-block.
    #[serde(with = "edge_map")]
    pub edges: BTreeMap<(u32, u32), u64>,
}

/// Serialises the tuple-keyed edge map as an entry list so text formats
/// (JSON) can represent it.
mod edge_map {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<(u32, u32), u64>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        map.iter().collect::<Vec<_>>().serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<(u32, u32), u64>, D::Error> {
        Ok(Vec::<((u32, u32), u64)>::deserialize(de)?
            .into_iter()
            .collect())
    }
}

impl Adcfg {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The node for `bb`, if it was ever visited.
    pub fn node(&self, bb: u32) -> Option<&Node> {
        self.nodes.get(&bb)
    }

    /// Number of visited basic blocks.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct edges (including boundary edges).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Traversal count of an edge.
    pub fn edge(&self, src: u32, dst: u32) -> u64 {
        self.edges.get(&(src, dst)).copied().unwrap_or(0)
    }

    /// Entry nodes: blocks reached directly from warp entry.
    pub fn entries(&self) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter(|&(&(s, _), _)| s == BOUNDARY)
            .map(|(&(_, d), _)| d)
    }

    /// Exit nodes: blocks from which a warp finished.
    pub fn exits(&self) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter(|&(&(_, d), _)| d == BOUNDARY)
            .map(|(&(s, _), _)| s)
    }

    /// Merges another graph into this one — used both to overlay warps and
    /// to fold repeated runs into evidence (paper §VII-A step 2).
    pub fn merge(&mut self, other: &Adcfg) {
        for (&bb, node) in &other.nodes {
            self.nodes.entry(bb).or_default().merge(node);
        }
        for (&e, &c) in &other.edges {
            *self.edges.entry(e).or_insert(0) += c;
        }
    }

    /// Multiplies every node and edge count by `k` — bit-identical to
    /// merging this graph `k` times into an empty one (all counts are
    /// `u64`, so `k` merges and one multiply agree exactly). The evidence
    /// phase uses this to fold `k` bit-identical runs at the cost of one.
    pub fn scale(&mut self, k: u64) {
        if k == 1 {
            return;
        }
        for node in self.nodes.values_mut() {
            node.scale(k);
        }
        if k == 0 {
            self.nodes.clear();
            self.edges.clear();
            return;
        }
        for count in self.edges.values_mut() {
            *count *= k;
        }
    }

    /// Estimated in-memory footprint in bytes — the quantity plotted in the
    /// paper's Fig. 5.
    pub fn size_bytes(&self) -> usize {
        let nodes: usize = self.nodes.values().map(Node::size_bytes).sum();
        nodes + self.edges.len() * 24
    }
}

/// Streaming construction of an [`Adcfg`] from warp-level trace events.
///
/// The builder is the "monitor" of the paper's §V-C: it keeps per-warp
/// context (previous/current block, per-block visit ordinals) and overlays
/// every warp onto the single shared graph. Warps are identified by an
/// opaque `u64` key (the tracer packs CTA id and warp id).
///
/// # Example
///
/// ```
/// use owl_dcfg::graph::AdcfgBuilder;
///
/// let mut b = AdcfgBuilder::new();
/// // Warp 0 walks bb0 → bb1; warp 1 walks bb0 → bb2.
/// b.enter_block(0, 0);
/// b.record_access(0, 0, [0x10]);
/// b.enter_block(0, 1);
/// b.enter_block(1, 0);
/// b.record_access(1, 0, [0x18]);
/// b.enter_block(1, 2);
/// let g = b.finish();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge(0, 1), 1);
/// assert_eq!(g.edge(0, 2), 1);
/// // Both warps' first-visit accesses to bb0's instruction 0 merged:
/// assert_eq!(g.node(0).unwrap().mem[&0][0].total(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AdcfgBuilder {
    graph: Adcfg,
    warps: BTreeMap<u64, WarpCtx>,
}

#[derive(Debug, Clone, Default)]
struct WarpCtx {
    prev: Option<u32>,
    current: Option<u32>,
    /// Visit ordinal per block for this warp (0-based; the ordinal of the
    /// *current* visit is `count - 1`).
    visit_counts: BTreeMap<u32, u32>,
}

impl AdcfgBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `warp` entered basic block `bb`.
    pub fn enter_block(&mut self, warp: u64, bb: u32) {
        let ctx = self.warps.entry(warp).or_default();
        // Finalise the previous visit: its `next` is now known.
        if let Some(cur) = ctx.current {
            let prev = ctx.prev.unwrap_or(BOUNDARY);
            self.graph
                .nodes
                .entry(cur)
                .or_default()
                .transitions
                .record(prev, bb, 1);
            *self.graph.edges.entry((cur, bb)).or_insert(0) += 1;
        } else {
            *self.graph.edges.entry((BOUNDARY, bb)).or_insert(0) += 1;
        }
        ctx.prev = ctx.current;
        ctx.current = Some(bb);
        let node = self.graph.nodes.entry(bb).or_default();
        node.visits += 1;
        *ctx.visit_counts.entry(bb).or_insert(0) += 1;
    }

    /// Records a memory access by `warp` at instruction `inst_idx` of its
    /// current block; `addr_features` are the per-lane (already normalised)
    /// address values.
    ///
    /// # Panics
    ///
    /// Panics if the warp has not entered any block yet — the interpreter
    /// always reports a block entry first.
    pub fn record_access(
        &mut self,
        warp: u64,
        inst_idx: u32,
        addr_features: impl IntoIterator<Item = u64>,
    ) {
        self.block_recorder(warp).access(inst_idx, addr_features);
    }

    /// Records the microarchitectural cost (transactions / conflicts) of a
    /// memory access by `warp` at instruction `inst_idx` of its current
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if the warp has not entered any block yet.
    pub fn record_cost(&mut self, warp: u64, inst_idx: u32, cost: u32) {
        self.block_recorder(warp).cost(inst_idx, cost);
    }

    /// A handle for recording all memory events of `warp`'s current
    /// basic-block visit: the warp context, node, and visit ordinal are
    /// resolved once and reused for every event — the batched tracer emits
    /// a whole block's events through one handle instead of repeating the
    /// map lookups per event.
    ///
    /// # Panics
    ///
    /// Panics if the warp has not entered any block yet — the interpreter
    /// always reports a block entry first.
    pub fn block_recorder(&mut self, warp: u64) -> BlockRecorder<'_> {
        let ctx = self
            .warps
            .get(&warp)
            .expect("memory access before any block entry");
        let bb = ctx.current.expect("memory access before any block entry");
        let j = (ctx.visit_counts[&bb] - 1) as usize;
        let node = self.graph.nodes.entry(bb).or_default();
        BlockRecorder { node, j }
    }

    /// Finalises all warps (their last visits exit to the boundary) and
    /// returns the assembled graph.
    ///
    /// Histograms and transition matrices buffer recent `record` calls in
    /// an unsorted fast path; `finish` normalises every attribute so the
    /// returned graph is fully sorted — downstream reads (iteration,
    /// serde, hashing) never pay a lazy sort, and the invocation digest
    /// cached over this graph stays valid as long as the graph is only
    /// changed through [`Adcfg::merge`] (which also normalises).
    pub fn finish(mut self) -> Adcfg {
        let warps = std::mem::take(&mut self.warps);
        for ctx in warps.values() {
            if let Some(cur) = ctx.current {
                let prev = ctx.prev.unwrap_or(BOUNDARY);
                self.graph
                    .nodes
                    .entry(cur)
                    .or_default()
                    .transitions
                    .record(prev, BOUNDARY, 1);
                *self.graph.edges.entry((cur, BOUNDARY)).or_insert(0) += 1;
            }
        }
        for node in self.graph.nodes.values_mut() {
            node.transitions.normalize();
            for per_visit in node.mem.values_mut().chain(node.cost.values_mut()) {
                for h in per_visit {
                    h.normalize();
                }
            }
        }
        self.graph
    }
}

/// Per-block-visit recording handle returned by
/// [`AdcfgBuilder::block_recorder`]; `access`/`cost` are the per-event
/// bodies of [`AdcfgBuilder::record_access`]/[`AdcfgBuilder::record_cost`]
/// with the block resolution hoisted out.
#[derive(Debug)]
pub struct BlockRecorder<'a> {
    node: &'a mut Node,
    j: usize,
}

impl BlockRecorder<'_> {
    /// Records one memory access at `inst_idx` with per-lane (already
    /// normalised) address values.
    pub fn access(&mut self, inst_idx: u32, addr_features: impl IntoIterator<Item = u64>) {
        let per_visit = self.node.mem.entry(inst_idx).or_default();
        if per_visit.len() <= self.j {
            per_visit.resize(self.j + 1, Histogram::new());
        }
        let hist = &mut per_visit[self.j];
        for a in addr_features {
            hist.record(a, 1);
        }
    }

    /// Records the microarchitectural cost of the access at `inst_idx`.
    pub fn cost(&mut self, inst_idx: u32, cost: u32) {
        let per_visit = self.node.cost.entry(inst_idx).or_default();
        if per_visit.len() <= self.j {
            per_visit.resize(self.j + 1, Histogram::new());
        }
        per_visit[self.j].record(u64::from(cost), 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one warp through a block sequence.
    fn walk(b: &mut AdcfgBuilder, warp: u64, blocks: &[u32]) {
        for &bb in blocks {
            b.enter_block(warp, bb);
        }
    }

    #[test]
    fn single_warp_linear_path() {
        let mut b = AdcfgBuilder::new();
        walk(&mut b, 0, &[0, 1, 2]);
        let g = b.finish();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge(BOUNDARY, 0), 1);
        assert_eq!(g.edge(0, 1), 1);
        assert_eq!(g.edge(1, 2), 1);
        assert_eq!(g.edge(2, BOUNDARY), 1);
        // Node 1's single visit arrived from 0 and left to 2.
        assert_eq!(g.node(1).unwrap().transitions.count(0, 2), 1);
        assert_eq!(g.entries().collect::<Vec<_>>(), vec![0]);
        assert_eq!(g.exits().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn identical_warps_aggregate_without_growth() {
        // The paper's Fig. 4: warps sharing control flow overlay onto the
        // same nodes/edges, only the counts grow.
        let mut small = AdcfgBuilder::new();
        for w in 0..2 {
            walk(&mut small, w, &[0, 1, 0, 2]);
        }
        let small = small.finish();

        let mut big = AdcfgBuilder::new();
        for w in 0..64 {
            walk(&mut big, w, &[0, 1, 0, 2]);
        }
        let big = big.finish();

        assert_eq!(small.node_count(), big.node_count());
        assert_eq!(small.edge_count(), big.edge_count());
        assert_eq!(big.edge(0, 1), 64);
        assert_eq!(
            small.size_bytes(),
            big.size_bytes(),
            "no growth with warp count"
        );
    }

    #[test]
    fn divergent_warps_create_multiple_entries_and_exits() {
        let mut b = AdcfgBuilder::new();
        walk(&mut b, 0, &[0, 1]);
        walk(&mut b, 1, &[5, 6]);
        let g = b.finish();
        let mut entries: Vec<u32> = g.entries().collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![0, 5]);
        let mut exits: Vec<u32> = g.exits().collect();
        exits.sort_unstable();
        assert_eq!(exits, vec![1, 6]);
    }

    #[test]
    fn loop_revisits_accumulate_transitions() {
        let mut b = AdcfgBuilder::new();
        // 0 → (1 → 2)×3 → 3: block 1 visited thrice with different prevs.
        walk(&mut b, 0, &[0, 1, 2, 1, 2, 1, 2, 3]);
        let g = b.finish();
        let n1 = g.node(1).unwrap();
        assert_eq!(n1.visits, 3);
        assert_eq!(n1.transitions.count(0, 2), 1); // first visit: from 0
        assert_eq!(n1.transitions.count(2, 2), 2); // later visits: from 2
        assert_eq!(g.edge(1, 2), 3);
        assert_eq!(g.edge(2, 1), 2);
    }

    #[test]
    fn per_visit_memory_records_are_separated() {
        let mut b = AdcfgBuilder::new();
        b.enter_block(0, 7);
        b.record_access(0, 0, [0x100]);
        b.enter_block(0, 8);
        b.enter_block(0, 7); // second visit of bb7
        b.record_access(0, 0, [0x200]);
        let g = b.finish();
        let mem = &g.node(7).unwrap().mem[&0];
        assert_eq!(mem.len(), 2, "two visit ordinals");
        assert_eq!(mem[0].count(0x100), 1);
        assert_eq!(mem[0].count(0x200), 0);
        assert_eq!(mem[1].count(0x200), 1);
    }

    #[test]
    fn cross_warp_same_ordinal_accesses_merge() {
        let mut b = AdcfgBuilder::new();
        for w in 0..4 {
            b.enter_block(w, 3);
            b.record_access(w, 1, [0x40 + w * 8]);
        }
        let g = b.finish();
        let m0 = &g.node(3).unwrap().mem[&1][0];
        assert_eq!(m0.total(), 4);
        assert_eq!(m0.distinct(), 4);
    }

    #[test]
    fn graph_merge_is_count_additive() {
        let build = || {
            let mut b = AdcfgBuilder::new();
            b.enter_block(0, 0);
            b.record_access(0, 0, [1, 2]);
            b.enter_block(0, 1);
            b.finish()
        };
        let a = build();
        let mut m = build();
        m.merge(&a);
        assert_eq!(m.edge(0, 1), 2);
        assert_eq!(m.node(0).unwrap().visits, 2);
        assert_eq!(m.node(0).unwrap().mem[&0][0].total(), 4);
        // Merging equals building from doubled traffic.
        let mut doubled = AdcfgBuilder::new();
        for w in 0..2 {
            doubled.enter_block(w, 0);
            doubled.record_access(w, 0, [1, 2]);
            doubled.enter_block(w, 1);
        }
        assert_eq!(m, doubled.finish());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut b = AdcfgBuilder::new();
        walk(&mut b, 0, &[0, 1]);
        let g = b.finish();
        let mut m = g.clone();
        m.merge(&Adcfg::new());
        assert_eq!(m, g);
    }

    #[test]
    #[should_panic(expected = "before any block entry")]
    fn access_before_entry_panics() {
        let mut b = AdcfgBuilder::new();
        b.record_access(0, 0, [1]);
    }

    #[test]
    fn size_bytes_grows_with_distinct_addresses_only() {
        let repeated = {
            let mut b = AdcfgBuilder::new();
            for w in 0..8 {
                b.enter_block(w, 0);
                b.record_access(w, 0, [0x40]); // all warps hit one address
            }
            b.finish()
        };
        let spread = {
            let mut b = AdcfgBuilder::new();
            for w in 0..8 {
                b.enter_block(w, 0);
                b.record_access(w, 0, [w * 64]); // distinct addresses
            }
            b.finish()
        };
        assert!(spread.size_bytes() > repeated.size_bytes());
    }
}
