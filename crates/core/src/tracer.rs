//! The device-side tracer: Owl's NVBit instrumentation client.
//!
//! [`OwlTracer`] implements [`KernelHook`] and reconstructs one A-DCFG per
//! kernel launch, normalising global addresses to `(allocation, offset)`
//! features on the fly via the runtime's shared [`AllocTable`] (the paper
//! converts addresses to offsets during tracing to neutralise layout and
//! ASLR effects, §V-C).

use owl_dcfg::{Adcfg, AdcfgBuilder};
use owl_gpu::hook::{KernelHook, LaunchInfo, MemAccessEvent, MemEventBatch, WarpRef};
use owl_gpu::isa::MemSpace;
use owl_gpu::program::BlockId;
use owl_host::SharedAllocTable;

/// Packs a warp identity into the `u64` key the A-DCFG builder uses.
fn warp_key(w: WarpRef) -> u64 {
    (u64::from(w.cta) << 32) | u64::from(w.warp)
}

/// Encodes a memory access into the scalar feature the address histograms
/// store.
///
/// Bit layout of a resolved global feature:
///
/// ```text
///  63           62..40                    39..0
/// ┌───┬──────────────────────────┬────────────────────┐
/// │ 0 │ allocation id + 1 (23b)  │ byte offset (40b)  │
/// └───┴──────────────────────────┴────────────────────┘
/// ```
///
/// * Global accesses resolve to `(allocation, offset)`; the feature is
///   `(alloc + 1) << 40 | offset`, which is stable across layout changes.
///   The `+ 1` keeps allocation 0's features disjoint from raw
///   shared/local offsets.
/// * Shared/local/constant addresses are already offsets; the feature is
///   the raw address.
/// * An unresolvable global address (never produced by a correct run) is
///   tagged with the top bit so it cannot alias a normalised feature. An
///   in-bounds offset of 2^40 bytes (1 TiB) or more does not fit the
///   40-bit offset field; rather than silently truncating — which would
///   alias the feature into a *different* allocation's range and corrupt
///   the differential analysis — it saturates to the same tagged form.
pub fn encode_address(space: MemSpace, addr: u64, table: &owl_host::AllocTable) -> u64 {
    match space {
        MemSpace::Global => match table.resolve(addr) {
            Some((alloc, offset)) if offset < (1 << 40) => {
                ((u64::from(alloc.0) + 1) << 40) | offset
            }
            // Unresolvable, or offset too large for the encoding.
            _ => addr | (1 << 63),
        },
        // Shared/local/constant addresses and texel indices are already
        // layout-independent offsets.
        MemSpace::Shared | MemSpace::Local | MemSpace::Constant | MemSpace::Texture => addr,
    }
}

/// A [`KernelHook`] that reconstructs one [`Adcfg`] per kernel launch.
///
/// Attach it to a device (via `Rc<RefCell<…>>`), run the program, then
/// [`take_graphs`](OwlTracer::take_graphs) to collect the per-launch
/// graphs in launch order.
#[derive(Debug)]
pub struct OwlTracer {
    alloc_table: SharedAllocTable,
    current: Option<AdcfgBuilder>,
    finished: Vec<Adcfg>,
}

impl OwlTracer {
    /// Creates a tracer that normalises global addresses through the given
    /// shared allocation table (from [`owl_host::Device::alloc_table`]).
    pub fn new(alloc_table: SharedAllocTable) -> Self {
        OwlTracer {
            alloc_table,
            current: None,
            finished: Vec::new(),
        }
    }

    /// Removes and returns the completed per-launch graphs, oldest first.
    pub fn take_graphs(&mut self) -> Vec<Adcfg> {
        std::mem::take(&mut self.finished)
    }

    /// Number of completed kernel launches observed so far.
    pub fn completed(&self) -> usize {
        self.finished.len()
    }
}

impl KernelHook for OwlTracer {
    fn kernel_begin(&mut self, _info: &LaunchInfo) {
        debug_assert!(self.current.is_none(), "nested kernel launches");
        self.current = Some(AdcfgBuilder::new());
    }

    fn kernel_end(&mut self, _info: &LaunchInfo) {
        let builder = self
            .current
            .take()
            .expect("kernel_end without kernel_begin");
        self.finished.push(builder.finish());
    }

    fn bb_entry(&mut self, warp: WarpRef, bb: BlockId) {
        self.current
            .as_mut()
            .expect("bb_entry outside a kernel")
            .enter_block(warp_key(warp), bb.0);
    }

    fn mem_access(&mut self, warp: WarpRef, event: &MemAccessEvent) {
        let table = self.alloc_table.borrow();
        let features = event
            .lane_addrs
            .iter()
            .map(|&(_, addr)| encode_address(event.space, addr, &table));
        let builder = self.current.as_mut().expect("mem_access outside a kernel");
        builder.record_access(warp_key(warp), event.inst_idx, features);
        // The per-event microarchitectural cost (coalescing / bank
        // conflicts) — computed from the *raw* addresses, since the
        // hardware sees the physical layout.
        builder.record_cost(warp_key(warp), event.inst_idx, event.cost_feature());
    }

    fn mem_batch(&mut self, warp: WarpRef, batch: &MemEventBatch) {
        // Bulk path: every event in a batch belongs to the same warp and
        // basic-block visit, so one alloc-table borrow and one
        // block-recorder resolution cover the whole batch; the costs
        // arrive pre-computed in the descriptors.
        let table = self.alloc_table.borrow();
        let builder = self.current.as_mut().expect("mem_batch outside a kernel");
        let mut rec = builder.block_recorder(warp_key(warp));
        for (desc, lanes) in batch.events() {
            rec.access(
                desc.inst_idx,
                lanes
                    .iter()
                    .map(|&(_, addr)| encode_address(desc.space, addr, &table)),
            );
            rec.cost(desc.inst_idx, desc.cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_gpu::build::KernelBuilder;
    use owl_gpu::grid::LaunchConfig;
    use owl_gpu::isa::{MemWidth, SpecialReg};
    use owl_host::Device;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn lookup_kernel() -> owl_gpu::KernelProgram {
        let b = KernelBuilder::new("lookup");
        let table = b.param(0);
        let out = b.param(1);
        let tid = b.special(SpecialReg::GlobalTid);
        let v = b.load_global(b.add(table, b.mul(tid, 4u64)), MemWidth::B4);
        b.store_global(b.add(out, b.mul(tid, 4u64)), v, MemWidth::B4);
        b.finish()
    }

    #[test]
    fn one_graph_per_launch() {
        let mut dev = Device::new();
        let tracer = Rc::new(RefCell::new(OwlTracer::new(dev.alloc_table())));
        dev.attach_hook(tracer.clone());
        let t = dev.malloc(4 * 32);
        let o = dev.malloc(4 * 32);
        let k = lookup_kernel();
        for _ in 0..3 {
            dev.launch(&k, LaunchConfig::new(1u32, 32u32), &[t.addr(), o.addr()])
                .unwrap();
        }
        let graphs = tracer.borrow_mut().take_graphs();
        assert_eq!(graphs.len(), 3);
        assert_eq!(graphs[0], graphs[1], "deterministic kernel, equal graphs");
    }

    #[test]
    fn global_features_are_layout_independent() {
        // The same program under plain layout and under ASLR must produce
        // identical A-DCFGs thanks to offset normalisation.
        let run = |mut dev: Device| {
            let tracer = Rc::new(RefCell::new(OwlTracer::new(dev.alloc_table())));
            dev.attach_hook(tracer.clone());
            let t = dev.malloc(4 * 32);
            let o = dev.malloc(4 * 32);
            dev.launch(
                &lookup_kernel(),
                LaunchConfig::new(1u32, 32u32),
                &[t.addr(), o.addr()],
            )
            .unwrap();
            let mut tr = tracer.borrow_mut();
            tr.take_graphs().remove(0)
        };
        let plain = run(Device::new());
        let aslr1 = run(Device::with_aslr(111));
        let aslr2 = run(Device::with_aslr(999));
        assert_eq!(plain, aslr1);
        assert_eq!(aslr1, aslr2);
    }

    #[test]
    fn encode_address_distinguishes_allocations_not_layout() {
        let mut dev = Device::new();
        let a = dev.malloc(64);
        let b = dev.malloc(64);
        let table = dev.alloc_table();
        let table = table.borrow();
        let fa = encode_address(MemSpace::Global, a.addr() + 8, &table);
        let fb = encode_address(MemSpace::Global, b.addr() + 8, &table);
        assert_ne!(fa, fb, "different allocations, different features");
        // Same offset within the same allocation → same feature.
        assert_eq!(fa, encode_address(MemSpace::Global, a.addr() + 8, &table));
        // Shared-space addresses pass through.
        assert_eq!(encode_address(MemSpace::Shared, 40, &table), 40);
    }

    #[test]
    fn unresolved_global_address_is_tagged() {
        let dev = Device::new();
        let table = dev.alloc_table();
        let f = encode_address(MemSpace::Global, 0x1234, &table.borrow());
        assert_ne!(f & (1 << 63), 0);
    }
}
