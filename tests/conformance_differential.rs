//! Differential conformance suite (`owl-conformance`).
//!
//! Every randomly generated kernel must behave *bit-identically* under the
//! production lowered interpreter and the naive reference oracle
//! (`owl_gpu::oracle`): same launch outcome (including the exact error),
//! same hook event streams, same `SimCounters`, same final device memory.
//! See `DESIGN.md` §3.14 for the conformance contract.
//!
//! A divergence is shrunk (`owl_gpu::genkernel::shrink`) and persisted as
//! a JSON corpus file under `tests/corpus/new-<seed>.json`; CI uploads
//! those files as artifacts. Committed corpus files are replayed by
//! [`corpus_replays_conformant`] on every run, so a once-found divergence
//! stays a plain `cargo test` regression forever.

use owl_gpu::exec::Interpreter;
use owl_gpu::genkernel::{diff_case, run_kernel, shrink, GeneratedKernel};
use std::path::{Path, PathBuf};

/// Fixed seed base: CI sweeps the same kernel population every run, so a
/// red conformance job always reproduces locally from the seed alone.
const SEED_BASE: u64 = 0x5EED_0000_0000_0000;

/// Number of generated kernels per sweep. Override with
/// `OWL_CONFORMANCE_CASES` for deeper local soak runs; the default meets
/// the ≥256-kernels-per-CI-run floor.
fn cases() -> u64 {
    std::env::var("OWL_CONFORMANCE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Shrinks a diverging kernel, writes it to the corpus as
/// `new-<seed>.json`, and fails the test with a reproduction recipe.
fn persist_counterexample(seed: u64, kernel: &GeneratedKernel, err: &str) -> ! {
    let small = shrink(kernel);
    let small_err = diff_case(&small)
        .err()
        .unwrap_or_else(|| "shrunk kernel no longer diverges (shrinker bug?)".to_owned());
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create tests/corpus");
    let path = dir.join(format!("new-{seed:016x}.json"));
    let json = serde_json::to_string_pretty(&small).expect("serialise counterexample");
    std::fs::write(&path, json).expect("persist counterexample");
    panic!(
        "interpreter divergence on seed {seed:#018x}:\n{err}\n\n\
         shrunk counterexample ({} blocks) written to {}\n\
         shrunk divergence: {small_err}\n\
         it now replays under `cargo test --test conformance_differential \
         corpus_replays_conformant`; commit the file (dropping the `new-` \
         prefix) alongside the interpreter fix",
        small.program.blocks.len(),
        path.display(),
    );
}

/// The sweep: ≥256 fixed-seed kernels, each executed by both interpreters
/// with every observable compared. Zero divergence is the bar.
#[test]
fn generated_kernels_agree_across_interpreters() {
    let n = cases();
    let mut faulting = 0u64;
    for i in 0..n {
        let seed = SEED_BASE ^ i;
        let kernel = GeneratedKernel::generate(seed);
        if let Err(err) = diff_case(&kernel) {
            persist_counterexample(seed, &kernel, &err);
        }
        if run_kernel(&kernel, Interpreter::Lowered).result.is_err() {
            faulting += 1;
        }
    }
    // The sweep is only meaningful if it covers both completing launches
    // and the deliberately-planted fault population (wild loads, division
    // by zero, tiny fuel budgets): error equality is half the contract.
    assert!(
        faulting > 0 && faulting < n,
        "degenerate sweep: {faulting}/{n} launches faulted — the generator's \
         fault rates drifted and the conformance suite lost coverage"
    );
}

/// Replays every committed corpus file — shrunk counterexamples from past
/// divergences plus hand-picked coverage seeds — through the full
/// differential check. A plain `cargo test` target: no seeds, no
/// generator, just serialised kernels.
#[test]
fn corpus_replays_conformant() {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| entry.expect("corpus dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 3,
        "regression corpus unexpectedly small ({} files) — corpus files \
         must not be deleted without removing the divergence they witness",
        paths.len()
    );
    for path in &paths {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let kernel: GeneratedKernel =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
        kernel
            .program
            .validate()
            .unwrap_or_else(|e| panic!("corpus file {} is invalid: {e:?}", path.display()));
        if let Err(err) = diff_case(&kernel) {
            panic!(
                "corpus regression: {} diverges between interpreters:\n{err}",
                path.display()
            );
        }
    }
}
