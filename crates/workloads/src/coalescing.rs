//! A coalescing-only leak: the warp-aggregation blind spot, closed.
//!
//! Owl's A-DCFG merges the addresses of all warps into one histogram per
//! instruction. That is what keeps traces small — but it discards *which
//! addresses were touched together*. This workload exploits exactly that:
//! every thread reads `table[(tid · stride) mod N]` where the secret
//! `stride` is odd, so the *set* of addresses is the same permutation of
//! `0..N` for every secret — the aggregated address histogram is
//! byte-identical across secrets. What changes is the per-warp grouping,
//! i.e. the number of 32-byte segments each warp access touches: the
//! memory-coalescing side channel of Jiang et al. (HPCA'16).
//!
//! The detector's per-event cost histograms (an extension over the paper)
//! recover the leak that address aggregation hides.

use owl_core::TracedProgram;
use owl_gpu::build::KernelBuilder;
use owl_gpu::grid::LaunchConfig;
use owl_gpu::isa::{CmpOp, MemWidth, SpecialReg};
use owl_gpu::KernelProgram;
use owl_host::{Device, HostError};

/// Table elements (a power of two; 4 warps of threads).
pub const N: usize = 128;

fn build_kernel() -> KernelProgram {
    let b = KernelBuilder::new("strided_gather");
    let table = b.param(0);
    let out = b.param(1);
    let stride = b.param(2);
    let n = b.param(3);
    let tid = b.special(SpecialReg::GlobalTid);
    let guard = b.setp(CmpOp::LtU, tid, n);
    b.if_then(guard, |b| {
        // A permutation of 0..N for any odd stride: the aggregate address
        // multiset is secret-independent.
        let idx = b.rem(b.mul(tid, stride), n);
        let v = b.load_global(b.add(table, b.mul(idx, 4u64)), MemWidth::B4);
        // Bounded, secret-independent output slot.
        let slot = b.and(tid, 31u64);
        b.store_global(b.add(out, b.mul(slot, 4u64)), v, MemWidth::B4);
    });
    b.finish()
}

/// The strided-gather workload; the secret is the (odd) stride.
#[derive(Debug, Clone)]
pub struct CoalescingStride {
    kernel: KernelProgram,
}

impl CoalescingStride {
    /// A new strided-gather workload over a fixed table.
    pub fn new() -> Self {
        CoalescingStride {
            kernel: build_kernel(),
        }
    }
}

impl Default for CoalescingStride {
    fn default() -> Self {
        Self::new()
    }
}

impl TracedProgram for CoalescingStride {
    /// The secret stride (must be odd so the gather is a permutation).
    type Input = u64;

    fn name(&self) -> &str {
        "coalescing/strided-gather"
    }

    fn run(&self, device: &mut Device, stride: &u64) -> Result<(), HostError> {
        assert!(stride % 2 == 1, "stride must be odd (a permutation mod N)");
        let table = device.malloc(N * 4);
        let bytes: Vec<u8> = (0..N as u32).flat_map(|i| (i * 3).to_le_bytes()).collect();
        device.memcpy_h2d(table, &bytes)?;
        let out = device.malloc(32 * 4);
        device.launch(
            &self.kernel,
            LaunchConfig::new((N as u32).div_ceil(32), 32u32),
            &[table.addr(), out.addr(), *stride, N as u64],
        )?;
        Ok(())
    }

    fn random_input(&self, seed: u64) -> u64 {
        // An odd stride in 1..N.
        (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) % (N as u64 / 2)) * 2 + 1
    }

    fn deterministic_host(&self) -> bool {
        true // audited: `run` has no per-run host state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_core::record_trace;

    #[test]
    fn aggregate_address_histograms_are_stride_independent() {
        // The core of the blind spot: different secrets, identical
        // aggregated address histograms.
        let w = CoalescingStride::new();
        let t1 = record_trace(&w, &1).unwrap();
        let t33 = record_trace(&w, &33).unwrap();
        let mem = |t: &owl_core::ProgramTrace| {
            t.invocations[0]
                .adcfg
                .nodes
                .values()
                .map(|n| n.mem.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(mem(&t1), mem(&t33), "same permutation, same aggregate");
        // But the cost histograms differ — the per-event grouping changed.
        let cost = |t: &owl_core::ProgramTrace| {
            t.invocations[0]
                .adcfg
                .nodes
                .values()
                .map(|n| n.cost.clone())
                .collect::<Vec<_>>()
        };
        assert_ne!(cost(&t1), cost(&t33), "coalescing degree must differ");
    }

    #[test]
    fn stride_one_is_fully_coalesced() {
        let w = CoalescingStride::new();
        let t = record_trace(&w, &1).unwrap();
        // The gather instruction: every warp touches 32 consecutive 4-byte
        // words = 4 segments of 32 bytes.
        let g = &t.invocations[0].adcfg;
        let cost_hist = g
            .nodes
            .values()
            .flat_map(|n| n.cost.values())
            .flat_map(|v| v.iter())
            .find(|h| h.count(4) > 0)
            .expect("a 4-transaction access exists");
        assert_eq!(cost_hist.count(4), 4, "4 warps, 4 transactions each");
    }
}
