//! Phase 1 — trace recording (paper §V).
//!
//! One recorded execution = a fresh device, the Owl tracer attached, the
//! program run once, and the host/device observations zipped into a
//! [`ProgramTrace`]: kernel launches (host side, with call-site identity)
//! paired with their A-DCFGs (device side), plus allocation records.

use crate::error::DetectError;
use crate::govern::RunGovernor;
use crate::program::TracedProgram;
use crate::trace::{InvocationKey, KernelInvocation, MallocRecord, ProgramTrace};
use crate::tracer::OwlTracer;
use owl_host::{Device, HostEvent};
use std::cell::RefCell;
use std::rc::Rc;

/// Records one execution of `program` over `input`.
///
/// Every recording uses a fresh [`Device`], so traces are independent of
/// prior executions (the paper restarts the target per run).
///
/// # Errors
///
/// Returns [`DetectError::Host`] if the program fails, or
/// [`DetectError::TraceMismatch`] if instrumentation lost events.
pub fn record_trace<P: TracedProgram>(
    program: &P,
    input: &P::Input,
) -> Result<ProgramTrace, DetectError> {
    let mut device = Device::new();
    record_trace_on(program, input, &mut device)
}

/// Identity of one detector-driven recording: everything needed to set up
/// the device deterministically, independent of which thread records the
/// run or in which order runs execute.
///
/// The detector assigns every recording a `(stream, run_index)` pair —
/// phase-1 user-input recordings, the shared `E_rnd` recordings, and each
/// class's `E_fix` recordings live in distinct streams — and the simulated
/// ASLR layout is a pure mix of `(aslr_seed, stream, run_index)`. Two
/// [`record_run`] calls with equal arguments produce equal traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// SIMT warp width for the recording device.
    pub warp_size: u32,
    /// Base ASLR seed (`None` = ASLR off).
    pub aslr_seed: Option<u64>,
    /// The recording stream this run belongs to.
    pub stream: u64,
    /// The run's index within its stream.
    pub run_index: u64,
    /// The retry attempt this recording belongs to (0 = first try). Folded
    /// into the layout seed so retried runs stay pure functions of their
    /// spec: attempt 0 reproduces the pre-retry layout exactly, and each
    /// retry sees a fresh (but deterministic) layout under ASLR.
    pub attempt: u32,
}

impl RunSpec {
    /// The per-run ASLR layout seed: a pure function of
    /// `(aslr_seed, stream, run_index, attempt)`, never of recording
    /// order. `attempt == 0` contributes nothing, keeping first-try
    /// layouts identical to the retry-free detector.
    pub fn layout_seed(&self) -> Option<u64> {
        let attempt_salt = u64::from(self.attempt).wrapping_mul(ATTEMPT_SALT);
        self.aslr_seed.map(|base| {
            mix64(
                mix64(base ^ STREAM_SALT.wrapping_mul(self.stream)) ^ self.run_index ^ attempt_salt,
            )
        })
    }

    /// The same run identity at a different retry attempt.
    #[must_use]
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }
}

const STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const ATTEMPT_SALT: u64 = 0xd1b5_4a32_d192_ed03;

/// SplitMix64 finalizer: a bijective avalanche mix.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Records one detector-driven run: a pure function of
/// `(program, input, spec)`.
///
/// Replaces the former order-dependent closure in `detect()` (which seeded
/// ASLR from a shared incrementing counter): the device layout now derives
/// from [`RunSpec::layout_seed`], so any thread may record any run in any
/// order and produce bit-identical traces.
///
/// # Errors
///
/// See [`record_trace`].
pub fn record_run<P: TracedProgram>(
    program: &P,
    input: &P::Input,
    spec: &RunSpec,
) -> Result<ProgramTrace, DetectError> {
    record_run_metered(program, input, spec).map(|(trace, _)| trace)
}

/// [`record_run`] that also returns the run's simulator execution counters.
///
/// The counters are kept **out of** [`ProgramTrace`] on purpose: traces are
/// compared and digested by the duplicate filter, and folding counters into
/// them would change trace identity. The counters are deterministic for a
/// given `(program, input, spec)` — they come from the warp-lockstep
/// execution itself — so they inherit the same purity as the trace.
///
/// # Errors
///
/// See [`record_trace`].
pub fn record_run_metered<P: TracedProgram>(
    program: &P,
    input: &P::Input,
    spec: &RunSpec,
) -> Result<(ProgramTrace, owl_metrics::SimCounters), DetectError> {
    record_run_governed(program, input, spec, RunGovernor::unbounded())
}

/// [`record_run_metered`] under a [`RunGovernor`]: the governor's
/// instruction budget becomes the simulator fuel for every launch in the
/// run, its cancellation token is polled cooperatively at basic-block
/// boundaries, and the per-run memory-event/allocation budgets are checked
/// once the run completes.
///
/// Cancellation is checked *before* the run starts as well, so an expired
/// deadline fails fast without touching the device. A cancelled run never
/// yields a partial trace — callers get [`DetectError::Cancelled`] and the
/// whole run is dropped, which is what keeps surviving evidence
/// deterministic under wall-clock deadlines.
///
/// # Errors
///
/// Everything [`record_trace`] raises, plus
/// [`DetectError::Cancelled`] and [`DetectError::BudgetExhausted`].
pub fn record_run_governed<P: TracedProgram>(
    program: &P,
    input: &P::Input,
    spec: &RunSpec,
    governor: RunGovernor<'_>,
) -> Result<(ProgramTrace, owl_metrics::SimCounters), DetectError> {
    if governor.is_cancelled() {
        return Err(DetectError::Cancelled);
    }
    if let Some(fault) = program.injected_detect_fault(spec) {
        return Err(fault);
    }
    let mut device = match spec.layout_seed() {
        None => Device::new(),
        Some(seed) => Device::with_aslr(seed),
    };
    device.set_launch_options(owl_gpu::exec::LaunchOptions {
        warp_size: spec.warp_size,
        interpreter: owl_gpu::exec::Interpreter::Lowered,
        fuel: governor.budget.max_instructions,
        cancel: governor.cancel.cloned(),
    });
    let trace = record_trace_inner(program, input, &mut device, Some(spec))?;
    let counters = device.total_stats().counters;
    governor
        .budget
        .check_run(counters.mem_accesses, trace.mallocs.len() as u64)?;
    Ok((trace, counters))
}

/// [`record_run_metered`] with an explicit simulator interpreter.
///
/// This is the conformance seam: the `owl-conformance` suite records the
/// same `(program, input, spec)` under the lowered fast path and under the
/// reference oracle and asserts the resulting [`ProgramTrace`]s (and their
/// digests, and the execution counters) are bit-identical. Production
/// callers should use [`record_run`] / [`record_run_metered`], which pin
/// the lowered interpreter.
///
/// # Errors
///
/// See [`record_trace`].
pub fn record_run_with_interpreter<P: TracedProgram>(
    program: &P,
    input: &P::Input,
    spec: &RunSpec,
    interpreter: owl_gpu::exec::Interpreter,
) -> Result<(ProgramTrace, owl_metrics::SimCounters), DetectError> {
    let mut device = match spec.layout_seed() {
        None => Device::new(),
        Some(seed) => Device::with_aslr(seed),
    };
    device.set_launch_options(owl_gpu::exec::LaunchOptions {
        warp_size: spec.warp_size,
        interpreter,
        ..owl_gpu::exec::LaunchOptions::default()
    });
    let trace = record_trace_inner(program, input, &mut device, Some(spec))?;
    Ok((trace, device.total_stats().counters))
}

/// [`record_trace`] on a caller-provided device (e.g. one with simulated
/// ASLR enabled, to exercise the normalisation path).
///
/// # Errors
///
/// See [`record_trace`].
pub fn record_trace_on<P: TracedProgram>(
    program: &P,
    input: &P::Input,
    device: &mut Device,
) -> Result<ProgramTrace, DetectError> {
    record_trace_inner(program, input, device, None)
}

/// The shared recording core. Detector-driven runs pass their [`RunSpec`]
/// so spec-aware programs ([`TracedProgram::run_with_spec`], e.g. the
/// fault-injection wrapper) can key behaviour on the run identity;
/// spec-less entry points pass `None` and hit the plain `run` path.
fn record_trace_inner<P: TracedProgram>(
    program: &P,
    input: &P::Input,
    device: &mut Device,
    spec: Option<&RunSpec>,
) -> Result<ProgramTrace, DetectError> {
    let tracer = Rc::new(RefCell::new(OwlTracer::new(device.alloc_table())));
    device.attach_hook(tracer.clone());
    let run_result = match spec {
        Some(spec) => program.run_with_spec(device, input, spec),
        None => program.run(device, input),
    };
    device.detach_hook();
    run_result?;

    let graphs = tracer.borrow_mut().take_graphs();
    let mut graphs = graphs.into_iter();
    let mut invocations = Vec::new();
    let mut mallocs = Vec::new();
    let mut launches = 0usize;
    for event in device.events() {
        match event {
            HostEvent::Launch {
                call_site,
                kernel,
                config,
                ..
            } => {
                launches += 1;
                let adcfg = graphs.next().ok_or(DetectError::TraceMismatch {
                    launches,
                    graphs: launches - 1,
                })?;
                invocations.push(KernelInvocation::new(
                    InvocationKey {
                        call_site: *call_site,
                        kernel: kernel.clone(),
                    },
                    (
                        (config.grid.x, config.grid.y, config.grid.z),
                        (config.block.x, config.block.y, config.block.z),
                    ),
                    adcfg,
                ));
            }
            HostEvent::Malloc {
                call_site, size, ..
            } => mallocs.push(MallocRecord {
                call_site: *call_site,
                size: *size,
            }),
            HostEvent::Free { .. } => {}
        }
    }
    let leftover = graphs.count();
    if leftover > 0 {
        return Err(DetectError::TraceMismatch {
            launches,
            graphs: launches + leftover,
        });
    }
    Ok(ProgramTrace {
        invocations,
        mallocs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_gpu::build::KernelBuilder;
    use owl_gpu::grid::LaunchConfig;
    use owl_gpu::isa::{CmpOp, MemWidth, SpecialReg};
    use owl_gpu::KernelProgram;
    use owl_host::HostError;

    /// A toy program with a secret-dependent host decision: launches a
    /// second kernel only when the secret is odd.
    struct Toy {
        k1: KernelProgram,
        k2: KernelProgram,
    }

    impl Toy {
        fn new() -> Self {
            let mk = |name: &str| {
                let b = KernelBuilder::new(name);
                let buf = b.param(0);
                let secret = b.param(1);
                let tid = b.special(SpecialReg::GlobalTid);
                // The whole warp indexes with the secret (like a shared
                // AES key): the aggregated histogram stays secret-dependent.
                let _ = tid;
                let addr = b.add(buf, b.mul(b.rem(secret, 32u64), 8u64));
                let v = b.load_global(addr, MemWidth::B8);
                // A secret-dependent branch, uniform across the warp.
                let p = b.setp(CmpOp::GtU, b.and(secret, 1u64), 0u64);
                b.if_then(p, |b| {
                    b.store_global(addr, b.add(v, 1u64), MemWidth::B8);
                });
                b.finish()
            };
            Toy {
                k1: mk("toy_k1"),
                k2: mk("toy_k2"),
            }
        }
    }

    impl TracedProgram for Toy {
        type Input = u64;

        fn name(&self) -> &str {
            "toy"
        }

        fn run(&self, device: &mut Device, input: &u64) -> Result<(), HostError> {
            let buf = device.malloc(8 * 32);
            device.launch(
                &self.k1,
                LaunchConfig::new(1u32, 32u32),
                &[buf.addr(), *input],
            )?;
            if input % 2 == 1 {
                device.launch(
                    &self.k2,
                    LaunchConfig::new(1u32, 32u32),
                    &[buf.addr(), *input],
                )?;
            }
            Ok(())
        }

        fn random_input(&self, seed: u64) -> u64 {
            seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        }
    }

    #[test]
    fn trace_structure_reflects_host_behaviour() {
        let toy = Toy::new();
        let even = record_trace(&toy, &2).unwrap();
        let odd = record_trace(&toy, &3).unwrap();
        assert_eq!(even.invocations.len(), 1);
        assert_eq!(odd.invocations.len(), 2);
        assert_eq!(even.mallocs.len(), 1);
        assert_eq!(odd.invocations[1].key.kernel, "toy_k2");
    }

    #[test]
    fn equal_inputs_equal_traces() {
        let toy = Toy::new();
        let a = record_trace(&toy, &6).unwrap();
        let b = record_trace(&toy, &6).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_secrets_different_graphs() {
        let toy = Toy::new();
        let a = record_trace(&toy, &2).unwrap();
        let b = record_trace(&toy, &4).unwrap();
        // Same kernel sequence, but the table index differs → different
        // address histograms.
        assert_eq!(a.invocations.len(), b.invocations.len());
        assert_ne!(a.invocations[0].adcfg, b.invocations[0].adcfg);
    }

    #[test]
    fn recording_is_aslr_invariant() {
        let toy = Toy::new();
        let plain = record_trace(&toy, &5).unwrap();
        let mut dev = Device::with_aslr(42);
        let aslr = record_trace_on(&toy, &5, &mut dev).unwrap();
        assert_eq!(plain, aslr);
    }

    #[test]
    fn record_run_is_pure_in_its_spec() {
        let toy = Toy::new();
        let spec = RunSpec {
            warp_size: 32,
            aslr_seed: Some(7),
            stream: 3,
            run_index: 11,
            attempt: 0,
        };
        let a = record_run(&toy, &5, &spec).unwrap();
        let b = record_run(&toy, &5, &spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn metered_recording_is_pure_and_counts_execution() {
        let toy = Toy::new();
        let spec = RunSpec {
            warp_size: 32,
            aslr_seed: Some(9),
            stream: 1,
            run_index: 4,
            attempt: 0,
        };
        let (trace_a, counters_a) = record_run_metered(&toy, &5, &spec).unwrap();
        let (trace_b, counters_b) = record_run_metered(&toy, &5, &spec).unwrap();
        assert_eq!(trace_a, trace_b);
        assert_eq!(counters_a, counters_b);
        assert!(counters_a.instructions > 0);
        assert!(counters_a.mem_accesses > 0);
        // The plain recorder sees the same trace.
        assert_eq!(record_run(&toy, &5, &spec).unwrap(), trace_a);
    }

    #[test]
    fn oracle_recording_matches_lowered_recording() {
        let toy = Toy::new();
        let spec = RunSpec {
            warp_size: 32,
            aslr_seed: Some(13),
            stream: 2,
            run_index: 7,
            attempt: 0,
        };
        for input in [2u64, 5] {
            let (fast, fast_counters) = record_run_with_interpreter(
                &toy,
                &input,
                &spec,
                owl_gpu::exec::Interpreter::Lowered,
            )
            .unwrap();
            let (oracle, oracle_counters) = record_run_with_interpreter(
                &toy,
                &input,
                &spec,
                owl_gpu::exec::Interpreter::Oracle,
            )
            .unwrap();
            assert_eq!(fast, oracle);
            assert_eq!(fast.digest(), oracle.digest());
            assert_eq!(fast_counters, oracle_counters);
        }
    }

    #[test]
    fn layout_seed_separates_streams_and_runs() {
        let spec = |stream, run_index| RunSpec {
            warp_size: 32,
            aslr_seed: Some(0xABCD),
            stream,
            run_index,
            attempt: 0,
        };
        // Distinct (stream, run) pairs get distinct layouts; equal pairs
        // agree; ASLR off means no layout at all.
        assert_eq!(spec(0, 5).layout_seed(), spec(0, 5).layout_seed());
        assert_ne!(spec(0, 5).layout_seed(), spec(1, 5).layout_seed());
        assert_ne!(spec(0, 5).layout_seed(), spec(0, 6).layout_seed());
        assert_ne!(spec(1, 0).layout_seed(), spec(2, 0).layout_seed());
        assert_eq!(
            RunSpec {
                aslr_seed: None,
                ..spec(0, 0)
            }
            .layout_seed(),
            None
        );
    }

    #[test]
    fn layout_seed_separates_retry_attempts() {
        let base = RunSpec {
            warp_size: 32,
            aslr_seed: Some(0xABCD),
            stream: 1,
            run_index: 5,
            attempt: 0,
        };
        // Attempt 0 is the run's canonical identity (pre-retry layouts are
        // reproduced exactly); each retry sees a distinct deterministic
        // layout.
        assert_eq!(base.layout_seed(), base.with_attempt(0).layout_seed());
        assert_ne!(base.layout_seed(), base.with_attempt(1).layout_seed());
        assert_ne!(
            base.with_attempt(1).layout_seed(),
            base.with_attempt(2).layout_seed()
        );
        assert_eq!(
            base.with_attempt(2).layout_seed(),
            base.with_attempt(2).layout_seed()
        );
    }
}
