//! Scan the mini-torch functions the way the paper scans PyTorch
//! (Table III, PyTorch rows), including the `max_pool2d` predication case
//! study, the `Tensor.__repr__` kernel leak, and the embedding/layernorm
//! extensions.
//!
//! ```text
//! cargo run --release --example detect_dnn
//! ```

use owl::core::{detect, LeakKind, OwlConfig, TracedProgram, Verdict};
use owl::workloads::torch::{Tensor, TorchFunction, TorchInput, TorchOpKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = OwlConfig {
        runs: 40,
        ..OwlConfig::default()
    };
    println!(
        "{:<18} {:>8} {:>8} {:>8}  verdict",
        "function", "kernel", "c.f.", "d.f."
    );
    for kind in TorchOpKind::ALL {
        let f = TorchFunction::new(kind);
        let mut inputs: Vec<TorchInput> = (0..4).map(|s| f.random_input(7000 + s)).collect();
        if kind == TorchOpKind::TensorRepr {
            // Exercise the zero-tensor special case.
            inputs.push(TorchInput::Tensor(Tensor::zeros([
                owl::workloads::torch::function::VEC_N,
            ])));
        }
        let detection = detect(&f, &inputs, &config)?;
        let marker = match detection.verdict {
            Verdict::Leaky => "LEAKY",
            Verdict::LeakFree => "clean (identical traces)",
            Verdict::NoInputDependence => "clean (noise only)",
            Verdict::Inconclusive => "inconclusive (runs quarantined)",
        };
        println!(
            "{:<18} {:>8} {:>8} {:>8}  {}",
            kind.label(),
            detection.report.count(LeakKind::Kernel),
            detection.report.count(LeakKind::ControlFlow),
            detection.report.count(LeakKind::DataFlow),
            marker
        );
    }
    println!();
    println!(
        "note: max_pool2d selects per-thread maxima via predication, so its\n\
         warp-level control flow is input-independent — the paper's case study."
    );
    Ok(())
}
