//! End-to-end detection tests: the Table III shape of the paper.
//!
//! These tests drive the full pipeline (trace → filter → evidence → KS
//! tests) over every workload and assert the *shape* of the paper's
//! findings: leaky implementations are flagged at the right leak kind,
//! constant-flow counterparts come out clean, and non-determinism is not
//! mistaken for leakage.

use owl::core::{detect, LeakKind, OwlConfig, TracedProgram, Verdict};
use owl::workloads::aes::{AesScan, AesTTable};
use owl::workloads::dummy::{DummySbox, NoiseDummy};
use owl::workloads::jpeg::{synthetic_image, JpegDecode, JpegEncode};
use owl::workloads::rsa::{RsaLadder, RsaSquareMultiply};
use owl::workloads::torch::{Tensor, TorchFunction, TorchInput, TorchOpKind};

fn config(runs: usize) -> OwlConfig {
    OwlConfig {
        runs,
        ..OwlConfig::default()
    }
}

#[test]
fn aes_ttable_leaks_data_flow() {
    let aes = AesTTable::new(32);
    let keys = [[0u8; 16], [0xffu8; 16], *b"owl-sca-detector", [0x3cu8; 16]];
    let detection = detect(&aes, &keys, &config(40)).expect("detection");
    assert_eq!(detection.verdict, Verdict::Leaky);
    assert!(
        detection.report.count(LeakKind::DataFlow) >= 1,
        "{}",
        detection.report
    );
    assert_eq!(
        detection.report.count(LeakKind::Kernel),
        0,
        "{}",
        detection.report
    );
}

#[test]
fn aes_scan_variant_is_clean() {
    // Constant-access-pattern AES (reduced rounds for speed; the access-
    // pattern property is round-independent).
    let aes = AesScan::with_rounds(32, 2);
    let keys = [[0u8; 16], [0xffu8; 16], *b"owl-sca-detector"];
    let detection = detect(&aes, &keys, &config(10)).expect("detection");
    assert_eq!(detection.verdict, Verdict::LeakFree, "{}", detection.report);
    assert!(detection.filter.single_class());
}

#[test]
fn rsa_square_multiply_leaks_control_flow() {
    let rsa = RsaSquareMultiply::new(32);
    let exponents = [0x8000_0001u64, 0xffff_ffff, 0x0f0f_0f0f, 3];
    let detection = detect(&rsa, &exponents, &config(40)).expect("detection");
    assert_eq!(detection.verdict, Verdict::Leaky);
    assert!(
        detection.report.count(LeakKind::ControlFlow) >= 1,
        "{}",
        detection.report
    );
    assert_eq!(
        detection.report.count(LeakKind::DataFlow),
        0,
        "{}",
        detection.report
    );
}

#[test]
fn rsa_ladder_is_clean() {
    let rsa = RsaLadder::new(32);
    let exponents = [0x8000_0001u64, 0xffff_ffff, 0x0f0f_0f0f, 3];
    let detection = detect(&rsa, &exponents, &config(10)).expect("detection");
    assert_eq!(detection.verdict, Verdict::LeakFree, "{}", detection.report);
}

#[test]
fn torch_losses_leak_data_flow() {
    for kind in [TorchOpKind::NllLoss, TorchOpKind::CrossEntropy] {
        let f = TorchFunction::new(kind);
        let inputs: Vec<TorchInput> = (0..4).map(|s| f.random_input(1000 + s)).collect();
        let detection = detect(&f, &inputs, &config(40)).expect("detection");
        assert_eq!(detection.verdict, Verdict::Leaky, "{kind:?}");
        assert!(
            detection.report.count(LeakKind::DataFlow) >= 1,
            "{kind:?}: {}",
            detection.report
        );
    }
}

#[test]
fn tensor_repr_leaks_kernel() {
    let f = TorchFunction::new(TorchOpKind::TensorRepr);
    let inputs = [
        TorchInput::Tensor(Tensor::zeros([owl::workloads::torch::function::VEC_N])),
        f.random_input(1),
        f.random_input(2),
    ];
    let detection = detect(&f, &inputs, &config(40)).expect("detection");
    assert_eq!(detection.verdict, Verdict::Leaky);
    assert!(
        detection.report.count(LeakKind::Kernel) >= 1,
        "{}",
        detection.report
    );
}

#[test]
fn torch_numeric_ops_are_clean() {
    // The paper: "many functions in PyTorch are purely numerical …
    // characterized by constant execution, thus do not exhibit side-channel
    // leaks."
    for kind in [
        TorchOpKind::Relu,
        TorchOpKind::Sigmoid,
        TorchOpKind::Tanh,
        TorchOpKind::Softmax,
        TorchOpKind::AvgPool2d,
        TorchOpKind::Conv2d,
        TorchOpKind::Linear,
        TorchOpKind::MseLoss,
    ] {
        let f = TorchFunction::new(kind);
        let inputs: Vec<TorchInput> = (0..3).map(|s| f.random_input(2000 + s)).collect();
        let detection = detect(&f, &inputs, &config(10)).expect("detection");
        assert_eq!(
            detection.verdict,
            Verdict::LeakFree,
            "{kind:?}: {}",
            detection.report
        );
    }
}

#[test]
fn max_pool2d_predication_hides_per_thread_control_dependence() {
    // The paper's case study: the CPU max_pool2d leaks through branches,
    // but the CUDA version's per-thread selection is predicated — every
    // warp visits the same blocks, so Owl reports no control-flow leak.
    let f = TorchFunction::new(TorchOpKind::MaxPool2d);
    let inputs: Vec<TorchInput> = (0..4).map(|s| f.random_input(3000 + s)).collect();
    let detection = detect(&f, &inputs, &config(20)).expect("detection");
    assert_eq!(detection.verdict, Verdict::LeakFree, "{}", detection.report);
}

#[test]
fn jpeg_encode_leaks_control_and_data_flow() {
    let enc = JpegEncode::new(16, 16);
    let inputs: Vec<Vec<u8>> = (0..4).map(|s| synthetic_image(s, 16, 16)).collect();
    let detection = detect(&enc, &inputs, &config(40)).expect("detection");
    assert_eq!(detection.verdict, Verdict::Leaky);
    assert!(
        detection.report.count(LeakKind::ControlFlow) >= 1,
        "{}",
        detection.report
    );
    assert!(
        detection.report.count(LeakKind::DataFlow) >= 1,
        "{}",
        detection.report
    );
    // All leaks live in the entropy stage; the DCT/quantisation kernel is
    // constant-flow and must stay clean.
    assert!(
        detection
            .report
            .leaks
            .iter()
            .all(|l| l.location.to_string().contains("jpeg_zigzag_rle")),
        "{}",
        detection.report
    );
}

#[test]
fn jpeg_decode_is_clean() {
    let dec = JpegDecode::new(16, 16);
    let inputs: Vec<Vec<i32>> = (0..3).map(|s| dec.random_input(s)).collect();
    let detection = detect(&dec, &inputs, &config(10)).expect("detection");
    assert_eq!(detection.verdict, Verdict::LeakFree, "{}", detection.report);
}

#[test]
fn dummy_sbox_leaks_data_flow() {
    let d = DummySbox::new(64);
    let detection = detect(&d, &[1, 2, 3, 4], &config(40)).expect("detection");
    assert_eq!(detection.verdict, Verdict::Leaky);
    assert!(
        detection.report.count(LeakKind::DataFlow) >= 1,
        "{}",
        detection.report
    );
}

#[test]
fn nondeterministic_program_is_not_flagged() {
    // The paper's false-positive defence: differences that appear equally
    // under fixed and random inputs are attributed to noise.
    let noise = NoiseDummy::new();
    let detection = detect(&noise, &[1, 2, 3], &config(40)).expect("detection");
    assert_ne!(
        detection.verdict,
        Verdict::LeakFree,
        "noise must differ across runs"
    );
    assert_eq!(
        detection.verdict,
        Verdict::NoInputDependence,
        "{}",
        detection.report
    );
}

#[test]
fn detection_is_reproducible() {
    let d = DummySbox::new(64);
    let a = detect(&d, &[1, 2], &config(30)).expect("detection");
    let b = detect(&d, &[1, 2], &config(30)).expect("detection");
    assert_eq!(a.report, b.report);
    assert_eq!(a.verdict, b.verdict);
}
