//! Regenerates Table IV: Owl's per-phase cost per workload — trace size
//! and collection time, evidence merge time, distribution-test time, peak
//! evidence footprint, and total detection time.
//!
//! ```text
//! cargo run --release -p owl-bench --bin table4 [--runs N]
//! ```

use owl_bench::{fmt_bytes, write_bench_json};
use owl_core::{detect, record_trace, OwlConfig, SimCounters, TracedProgram};
use owl_workloads::aes::AesTTable;
use owl_workloads::jpeg::{synthetic_image, JpegDecode, JpegEncode};
use owl_workloads::rsa::RsaSquareMultiply;
use owl_workloads::torch::{Tensor, TorchFunction, TorchInput, TorchOpKind};
use std::time::Instant;

#[derive(serde::Serialize)]
struct Row {
    name: String,
    trace_bytes: usize,
    trace_time_ms: f64,
    evidence_traces: usize,
    evidence_ms: f64,
    test_ms: f64,
    peak_bytes: usize,
    total_ms: f64,
    counters: SimCounters,
}

fn measure<P>(name: &str, program: &P, inputs: &[P::Input], runs: usize) -> Row
where
    P: TracedProgram + Sync,
    P::Input: Send + Sync,
{
    // Per-trace cost, measured directly (the Table IV "Trace Collection"
    // columns are per trace).
    let t0 = Instant::now();
    let trace = record_trace(program, &inputs[0]).expect("trace");
    let trace_time_ms = t0.elapsed().as_secs_f64() * 1e3;
    let trace_bytes = trace.size_bytes();

    let detection = detect(
        program,
        inputs,
        &OwlConfig {
            runs,
            force_analysis: true, // always measure the full pipeline
            ..OwlConfig::default()
        },
    )
    .expect("detection");
    Row {
        name: name.to_string(),
        trace_bytes,
        trace_time_ms,
        evidence_traces: detection.stats.evidence_traces,
        evidence_ms: detection.stats.evidence_time.as_secs_f64() * 1e3,
        test_ms: detection.stats.test_time.as_secs_f64() * 1e3,
        peak_bytes: detection.stats.peak_evidence_bytes,
        total_ms: detection.stats.total_time.as_secs_f64() * 1e3,
        counters: detection.counters,
    }
}

fn runs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--runs" {
            return args.next().and_then(|v| v.parse().ok()).expect("--runs N");
        }
    }
    100
}

fn main() {
    let runs = runs_from_args();
    let mut rows = Vec::new();

    let keys = [[0u8; 16], [0xff; 16], *b"owl-sca-detector"];
    rows.push(measure("aes128-ttable", &AesTTable::new(32), &keys, runs));
    rows.push(measure(
        "rsa-sqm",
        &RsaSquareMultiply::new(32),
        &[0x8000_0001u64, 0xffff_ffff, 3],
        runs,
    ));
    for kind in TorchOpKind::ALL {
        let f = TorchFunction::new(kind);
        let mut inputs: Vec<TorchInput> = (0..3).map(|s| f.random_input(500 + s)).collect();
        if kind == TorchOpKind::TensorRepr {
            inputs.push(TorchInput::Tensor(Tensor::zeros([
                owl_workloads::torch::function::VEC_N,
            ])));
        }
        rows.push(measure(kind.label(), &f, &inputs, runs));
    }
    let enc = JpegEncode::new(16, 16);
    let images: Vec<Vec<u8>> = (0..3).map(|s| synthetic_image(s, 16, 16)).collect();
    rows.push(measure("jpeg-encode", &enc, &images, runs));
    let dec = JpegDecode::new(16, 16);
    let coeffs: Vec<Vec<i32>> = (0..3).map(|s| dec.random_input(s)).collect();
    rows.push(measure("jpeg-decode", &dec, &coeffs, runs));

    println!("Table IV — performance of Owl ({runs} fixed + {runs} random runs per class)");
    println!("{:-<108}", "");
    println!(
        "{:<16} | {:>12} {:>10} | {:>7} {:>10} | {:>9} | {:>12} {:>10}",
        "function", "trace size", "time", "traces", "evidence", "KS tests", "peak RAM*", "total"
    );
    println!("{:-<108}", "");
    for r in &rows {
        println!(
            "{:<16} | {:>12} {:>8.2}ms | {:>7} {:>8.1}ms | {:>7.2}ms | {:>12} {:>8.1}ms",
            r.name,
            fmt_bytes(r.trace_bytes),
            r.trace_time_ms,
            r.evidence_traces,
            r.evidence_ms,
            r.test_ms,
            fmt_bytes(r.peak_bytes),
            r.total_ms,
        );
    }
    println!("{:-<108}", "");
    println!("* peak RAM counts the resident evidence structures (the dominant state),");
    println!("  mirroring the paper's maximum-RAM column at simulator scale.");
    let path = write_bench_json("table4", &rows).expect("write BENCH_table4.json");
    println!("machine-readable rows: {}", path.display());
}
