//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **KS vs Welch decision quality** is covered by unit tests (Welch
//!   misses equal-mean distribution changes); here we measure the *cost*
//!   ratio on trace-shaped features.
//! * **Warp aggregation**: A-DCFG construction versus per-thread trace
//!   recording for the same execution.
//! * **Countermeasure overhead**: the constant-access scan AES versus the
//!   leaky T-table AES (the price of the scatter-gather-style fix).

use criterion::{criterion_group, criterion_main, Criterion};
use owl_baselines::record_per_thread;
use owl_core::record_trace;
use owl_host::Device;
use owl_workloads::aes::{AesScan, AesTTable};
use owl_workloads::dummy::DummySbox;
use std::time::Duration;

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    g
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = quick(c);
    let dummy = DummySbox::new(2048);
    g.bench_function("aggregation/owl-adcfg-2k-threads", |b| {
        b.iter(|| record_trace(&dummy, &1).expect("trace"))
    });
    g.bench_function("aggregation/per-thread-2k-threads", |b| {
        b.iter(|| record_per_thread(&dummy, &1).expect("trace"))
    });
    g.finish();
}

fn bench_countermeasure(c: &mut Criterion) {
    let mut g = quick(c);
    let leaky = AesTTable::new(32);
    let ct = AesScan::with_rounds(32, 10);
    let key = [0x42u8; 16];
    g.bench_function("countermeasure/aes-ttable-encrypt", |b| {
        b.iter(|| leaky.encrypt(&mut Device::new(), &key).expect("ct"))
    });
    g.bench_function("countermeasure/aes-scan-encrypt", |b| {
        b.iter(|| ct.encrypt(&mut Device::new(), &key).expect("ct"))
    });
    g.finish();
}

criterion_group!(benches, bench_aggregation, bench_countermeasure);
criterion_main!(benches);
