//! Program traces: the output of the trace-recording phase.
//!
//! A [`ProgramTrace`] is the paper's `T_P = (T_{k_1}, …, T_{k_n})`: the
//! chronological sequence of kernel invocations (each reconstructed into an
//! A-DCFG) plus the host-side allocation records. Kernel invocations are
//! identified by their host call site and kernel name — the paper's
//! call-stack identity for `cuLaunchKernel` (§V-C).

use owl_dcfg::Adcfg;
use owl_host::CallSite;
use serde::Serialize;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// Identity of a kernel invocation *site*: which kernel, launched from
/// where in host code.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct InvocationKey {
    /// Host call site of the launch.
    pub call_site: CallSite,
    /// Kernel name.
    pub kernel: String,
}

impl std::fmt::Display for InvocationKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.kernel, self.call_site)
    }
}

/// Launch geometry in hashable tuple form.
pub type ConfigTuple = ((u32, u32, u32), (u32, u32, u32));

/// One kernel invocation with its reconstructed A-DCFG.
///
/// The invocation's digest is computed lazily on the first
/// [`KernelInvocation::digest`] call and cached, so hashing a whole
/// [`ProgramTrace`] combines per-invocation digests instead of re-walking
/// every A-DCFG — the duplicate filter digests each trace exactly once
/// per run instead of once per comparison — while runs that are never
/// filtered (the evidence phase merges them directly) pay nothing.
///
/// **Caching rule:** the fields are public for reading, but mutating them
/// in place after a `digest()` call leaves the cached digest stale. Build
/// a new invocation with [`KernelInvocation::new`] instead; debug builds
/// assert freshness on every [`KernelInvocation::digest`] call.
#[derive(Debug, Clone, Eq)]
pub struct KernelInvocation {
    /// The invocation site identity.
    pub key: InvocationKey,
    /// Launch geometry (grid, block).
    pub config: ConfigTuple,
    /// The warp-aggregated trace of this invocation.
    pub adcfg: Adcfg,
    /// FNV-1a digest over `(key, config, adcfg)`, filled on first use.
    /// (`OnceLock` rather than `OnceCell`: traces cross the evidence
    /// phase's worker-thread boundary.)
    digest: OnceLock<u64>,
}

impl KernelInvocation {
    /// Creates an invocation record; the digest is computed on first use.
    pub fn new(key: InvocationKey, config: ConfigTuple, adcfg: Adcfg) -> Self {
        KernelInvocation {
            key,
            config,
            adcfg,
            digest: OnceLock::new(),
        }
    }

    /// The digest over `(key, config, adcfg)`, cached after the first call.
    pub fn digest(&self) -> u64 {
        let d = *self
            .digest
            .get_or_init(|| Self::compute_digest(&self.key, &self.config, &self.adcfg));
        debug_assert_eq!(
            d,
            Self::compute_digest(&self.key, &self.config, &self.adcfg),
            "stale invocation digest: fields were mutated after construction"
        );
        d
    }

    fn compute_digest(key: &InvocationKey, config: &ConfigTuple, adcfg: &Adcfg) -> u64 {
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        config.hash(&mut h);
        adcfg.hash(&mut h);
        h.finish()
    }
}

impl PartialEq for KernelInvocation {
    fn eq(&self, other: &Self) -> bool {
        // The digest cache is derived state — whether it has been filled
        // yet must not affect equality.
        self.key == other.key && self.config == other.config && self.adcfg == other.adcfg
    }
}

impl Hash for KernelInvocation {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The cached digest already covers all three fields; feeding it
        // instead of re-walking the A-DCFG makes trace-level hashing O(1)
        // per invocation. Consistent with `Eq`: the digest is a pure
        // function of the compared fields.
        state.write_u64(self.digest());
    }
}

/// A host allocation record: call site and size. Owl records allocations by
/// site and size (start address + length in the paper), so the record is
/// input-size independent for fixed-size programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MallocRecord {
    /// Host call site of the allocation.
    pub call_site: CallSite,
    /// Requested bytes.
    pub size: u64,
}

/// The full trace of one program execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ProgramTrace {
    /// Kernel invocations in chronological order.
    pub invocations: Vec<KernelInvocation>,
    /// Host allocations in chronological order.
    pub mallocs: Vec<MallocRecord>,
}

impl ProgramTrace {
    /// Estimated in-memory footprint in bytes — the quantity the paper
    /// plots in Fig. 5 (kernel traces plus constant-size host records).
    pub fn size_bytes(&self) -> usize {
        let (kernels, mallocs) = self.size_breakdown();
        kernels + mallocs
    }

    /// Breakdown of [`Self::size_bytes`] by component: `(kernel invocation
    /// records, malloc records)` — the two series of Fig. 5.
    pub fn size_breakdown(&self) -> (usize, usize) {
        let kernels: usize = self
            .invocations
            .iter()
            .map(|inv| inv.adcfg.size_bytes() + inv.key.kernel.len() + 24)
            .sum();
        (kernels, self.mallocs.len() * 24)
    }

    /// A deterministic digest of the trace, used by the duplicates-removing
    /// phase to group inputs into classes. Two traces compare equal exactly
    /// when the program showed identical observable behaviour.
    ///
    /// Combines the per-invocation digests cached at
    /// [`KernelInvocation::new`] — O(#invocations), not O(trace size).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::default();
        self.hash(&mut h);
        h.finish()
    }

    /// The invocation-key sequence, the unit of Myers alignment.
    pub fn key_sequence(&self) -> Vec<&InvocationKey> {
        self.invocations.iter().map(|i| &i.key).collect()
    }
}

/// A deterministic 64-bit FNV-1a hasher. `std`'s default hasher is
/// randomly keyed per process, which would break cross-run trace-class
/// stability; FNV-1a is stable, fast, and good enough for class keying
/// (classes are verified by full equality anyway).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owl_dcfg::AdcfgBuilder;

    fn site(line: u32) -> CallSite {
        CallSite {
            file: "host.rs",
            line,
            column: 1,
        }
    }

    fn invocation(line: u32, kernel: &str, walk: &[u32]) -> KernelInvocation {
        let mut b = AdcfgBuilder::new();
        for &bb in walk {
            b.enter_block(0, bb);
        }
        KernelInvocation::new(
            InvocationKey {
                call_site: site(line),
                kernel: kernel.into(),
            },
            ((1, 1, 1), (32, 1, 1)),
            b.finish(),
        )
    }

    #[test]
    fn digest_is_deterministic_and_discriminating() {
        let t1 = ProgramTrace {
            invocations: vec![invocation(1, "k", &[0, 1])],
            mallocs: vec![],
        };
        let t2 = ProgramTrace {
            invocations: vec![invocation(1, "k", &[0, 1])],
            mallocs: vec![],
        };
        let t3 = ProgramTrace {
            invocations: vec![invocation(1, "k", &[0, 2])],
            mallocs: vec![],
        };
        assert_eq!(t1.digest(), t2.digest());
        assert_ne!(t1.digest(), t3.digest());
    }

    #[test]
    fn cached_digest_equals_fresh_computation_after_merge() {
        // `digest()` recomputes and asserts freshness in debug builds, so
        // every equality below also proves cache == fresh recompute.
        let a = invocation(1, "k", &[0, 1, 1]);
        let cached = a.digest(); // fills the cache

        // Merging a's graph elsewhere must not disturb a's cached digest.
        let mut merged_graph = invocation(1, "k", &[0, 1, 1]).adcfg;
        merged_graph.merge(&a.adcfg);
        let merged = KernelInvocation::new(a.key.clone(), a.config, merged_graph.clone());
        assert_eq!(a.digest(), cached);

        // The merged invocation digests its own (new) state, and a second
        // independently merged build reproduces it exactly.
        assert_ne!(merged.digest(), cached, "merge changed the A-DCFG");
        let mut again = invocation(1, "k", &[0, 1, 1]).adcfg;
        again.merge(&invocation(1, "k", &[0, 1, 1]).adcfg);
        assert_eq!(
            KernelInvocation::new(a.key.clone(), a.config, again).digest(),
            merged.digest()
        );

        // Clones carry the filled cache; it stays valid because clones
        // share the cloned fields byte-for-byte.
        assert_eq!(merged.clone().digest(), merged.digest());
    }

    #[test]
    fn digest_sees_kernel_identity() {
        let a = ProgramTrace {
            invocations: vec![invocation(1, "k", &[0])],
            mallocs: vec![],
        };
        let b = ProgramTrace {
            invocations: vec![invocation(2, "k", &[0])],
            mallocs: vec![],
        };
        assert_ne!(a.digest(), b.digest(), "call sites distinguish traces");
    }

    #[test]
    fn size_breakdown_sums_to_total() {
        let t = ProgramTrace {
            invocations: vec![invocation(1, "k", &[0, 1, 2])],
            mallocs: vec![MallocRecord {
                call_site: site(9),
                size: 128,
            }],
        };
        let (k, m) = t.size_breakdown();
        assert_eq!(k + m, t.size_bytes());
        assert!(k > 0);
        assert_eq!(m, 24);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of "a" is 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
