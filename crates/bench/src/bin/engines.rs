//! Cross-engine comparison smoke: runs every analysis engine (KS, TVLA,
//! MI) over the same evidence on two representative leaky workloads and
//! reports the per-location agreement/disagreement table.
//!
//! Agreement across methods raises confidence in a leak; a disagreement
//! row localises a case one method is blind to (TVLA's mean-blindness,
//! MI's small-sample guard). The paper's KS engine remains the primary
//! verdict; this artefact records how the alternatives line up with it.
//!
//! ```text
//! cargo run --release -p owl-bench --bin engines
//! ```

use owl_bench::write_bench_json;
use owl_core::{detect, verdict_name, EngineComparison, OwlConfig, TracedProgram};
use owl_workloads::aes::AesTTable;
use owl_workloads::histogram::HistogramDirect;

/// One workload's cross-engine outcome.
#[derive(serde::Serialize)]
struct WorkloadRow {
    name: String,
    verdict: String,
    locations: usize,
    agreements: usize,
    disagreements: usize,
    comparison: EngineComparison,
}

/// The full engine-comparison artefact.
#[derive(serde::Serialize)]
struct EngineBench {
    engines: Vec<String>,
    workloads: Vec<WorkloadRow>,
}

fn compare<P>(
    name: &str,
    program: &P,
    inputs: &[P::Input],
    runs: usize,
) -> Result<WorkloadRow, Box<dyn std::error::Error>>
where
    P: TracedProgram + Sync,
    P::Input: Send + Sync,
{
    let config = OwlConfig::builder().runs(runs).engines_all().build();
    let detection = detect(program, inputs, &config)?;
    let comparison = detection
        .engine_comparison
        .expect("comparison mode records the table");
    println!(
        "  {name:<18} verdict={:<16} locations={:<3} agreed={:<3} split={}",
        verdict_name(detection.verdict),
        comparison.rows.len(),
        comparison.agreements,
        comparison.disagreements
    );
    for (engine, leaks) in comparison.engines.iter().zip(&comparison.leaks_per_engine) {
        println!("    {engine:<5} {leaks} leak(s)");
    }
    Ok(WorkloadRow {
        name: name.into(),
        verdict: verdict_name(detection.verdict).to_string(),
        locations: comparison.rows.len(),
        agreements: comparison.agreements,
        disagreements: comparison.disagreements,
        comparison,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Cross-engine agreement (ks / tvla / mi) on leaky workloads");
    println!();
    let mut doc = EngineBench {
        engines: vec!["ks".into(), "tvla".into(), "mi".into()],
        workloads: Vec::new(),
    };

    let aes = AesTTable::new(32);
    let keys = [[0u8; 16], [0xff; 16], *b"owl-sca-detector", [0x3c; 16]];
    doc.workloads
        .push(compare("aes128-ttable", &aes, &keys, 40)?);

    let histogram = HistogramDirect::new(64);
    let inputs: Vec<Vec<u8>> = (0..4).map(|s| histogram.random_input(s)).collect();
    doc.workloads
        .push(compare("histogram-direct", &histogram, &inputs, 40)?);

    let path = write_bench_json("engines", &doc)?;
    println!();
    println!("machine-readable comparison: {}", path.display());
    Ok(())
}
