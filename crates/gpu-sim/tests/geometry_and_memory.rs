//! Edge-case tests: multi-dimensional launch geometry, local memory,
//! float specials, and wide/narrow memory accesses.

use owl_gpu::build::KernelBuilder;
use owl_gpu::exec::launch;
use owl_gpu::grid::{Dim3, LaunchConfig};
use owl_gpu::hook::NullHook;
use owl_gpu::isa::{CmpOp, MemWidth, SpecialReg};
use owl_gpu::mem::DeviceMemory;

#[test]
fn two_dimensional_block_coordinates() {
    // 8x4 block: out[y*8+x] = x * 100 + y.
    let b = KernelBuilder::new("coords2d");
    let out = b.param(0);
    let x = b.special(SpecialReg::TidX);
    let y = b.special(SpecialReg::TidY);
    let w = b.special(SpecialReg::NTidX);
    let linear = b.add(b.mul(y, w), x);
    let v = b.add(b.mul(x, 100u64), y);
    b.store_global(b.add(out, b.mul(linear, 8u64)), v, MemWidth::B8);
    let k = b.finish();

    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(8 * 32);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, (8u32, 4u32)),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    for y in 0..4u64 {
        for x in 0..8u64 {
            assert_eq!(
                mem.load(o + (y * 8 + x) * 8, 8).unwrap(),
                x * 100 + y,
                "({x},{y})"
            );
        }
    }
}

#[test]
fn three_dimensional_grid_coordinates() {
    // 2x2x2 grid of single-thread blocks; each writes its (bx,by,bz).
    let b = KernelBuilder::new("grid3d");
    let out = b.param(0);
    let bx = b.special(SpecialReg::CtaidX);
    let by = b.special(SpecialReg::CtaidY);
    let bz = b.special(SpecialReg::CtaidZ);
    let gx = b.special(SpecialReg::NCtaidX);
    let gy = b.special(SpecialReg::NCtaidY);
    let linear = b.add(b.add(bx, b.mul(by, gx)), b.mul(bz, b.mul(gx, gy)));
    let packed = b.add(b.add(b.mul(bz, 100u64), b.mul(by, 10u64)), bx);
    b.store_global(b.add(out, b.mul(linear, 8u64)), packed, MemWidth::B8);
    let k = b.finish();

    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(8 * 8);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(Dim3 { x: 2, y: 2, z: 2 }, 1u32),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    for bz in 0..2u64 {
        for by in 0..2u64 {
            for bx in 0..2u64 {
                let linear = bx + by * 2 + bz * 4;
                assert_eq!(
                    mem.load(o + linear * 8, 8).unwrap(),
                    bz * 100 + by * 10 + bx
                );
            }
        }
    }
}

#[test]
fn local_memory_is_thread_private() {
    // Each thread spills its tid to local[0] and reads it back after every
    // other thread has done the same — values must not interfere.
    let b = KernelBuilder::new("local_spill");
    b.set_local_bytes(16);
    let out = b.param(0);
    let tid = b.special(SpecialReg::GlobalTid);
    b.store_local(0u64, tid, MemWidth::B8);
    b.store_local(8u64, b.mul(tid, 7u64), MemWidth::B8);
    let v0 = b.load_local(0u64, MemWidth::B8);
    let v1 = b.load_local(8u64, MemWidth::B8);
    b.store_global(b.add(out, b.mul(tid, 8u64)), b.add(v0, v1), MemWidth::B8);
    let k = b.finish();

    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(8 * 64);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 64u32),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    for t in 0..64u64 {
        assert_eq!(mem.load(o + t * 8, 8).unwrap(), t + t * 7, "thread {t}");
    }
}

#[test]
fn local_memory_out_of_bounds_faults() {
    let b = KernelBuilder::new("local_oob");
    b.set_local_bytes(8);
    b.store_local(8u64, 1u64, MemWidth::B8);
    let k = b.finish();
    let mut mem = DeviceMemory::new();
    assert!(launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 32u32),
        &[],
        &mut NullHook
    )
    .is_err());
}

#[test]
fn float_specials_propagate_ieee754() {
    // exp(large) = inf; inf - inf = NaN; NaN != NaN via FNe; 1/0 = inf.
    let b = KernelBuilder::new("specials");
    let out = b.param(0);
    let inf = b.fexp(1000.0f32);
    let nan = b.fsub(inf, inf);
    let not_equal_self = b.setp(CmpOp::FNe, nan, nan);
    let flag = b.sel(not_equal_self, 1u64, 0u64);
    let div0 = b.fdiv(1.0f32, 0.0f32);
    b.store_global(out, inf, MemWidth::B4);
    b.store_global(b.add(out, 4u64), flag, MemWidth::B8);
    b.store_global(b.add(out, 12u64), div0, MemWidth::B4);
    let k = b.finish();

    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(16);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 1u32),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    assert_eq!(
        f32::from_bits(mem.load(o, 4).unwrap() as u32),
        f32::INFINITY
    );
    assert_eq!(mem.load(o + 4, 8).unwrap(), 1, "NaN != NaN");
    assert_eq!(
        f32::from_bits(mem.load(o + 12, 4).unwrap() as u32),
        f32::INFINITY
    );
}

#[test]
fn float_floor_and_conversions() {
    let b = KernelBuilder::new("floor");
    let out = b.param(0);
    let cases = [(-2.5f32, -3i64), (2.5, 2), (-0.5, -1), (0.0, 0)];
    for (i, (x, _)) in cases.iter().enumerate() {
        let f = b.ffloor(*x);
        let v = b.f2i(f);
        b.store_global(b.add(out, (i as u64) * 8), v, MemWidth::B8);
    }
    let k = b.finish();
    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(8 * 4);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 1u32),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    for (i, (x, want)) in cases.iter().enumerate() {
        assert_eq!(
            mem.load(o + (i as u64) * 8, 8).unwrap() as i64,
            *want,
            "floor({x})"
        );
    }
}

#[test]
fn narrow_stores_do_not_clobber_neighbours() {
    let b = KernelBuilder::new("narrow");
    let out = b.param(0);
    b.store_global(out, 0x1122_3344_5566_7788u64, MemWidth::B8);
    b.store_global(b.add(out, 2u64), 0xABu64, MemWidth::B1);
    b.store_global(b.add(out, 4u64), 0xCDEFu64, MemWidth::B2);
    let k = b.finish();
    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(8);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 1u32),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    assert_eq!(mem.load(o, 8).unwrap(), 0x1122_CDEF_55AB_7788);
}

#[test]
fn unary_not_and_neg() {
    let b = KernelBuilder::new("unary");
    let out = b.param(0);
    let not = b.not(0u64);
    let neg = b.neg(5u64);
    let fabs = b.fabs(-3.5f32);
    b.store_global(out, not, MemWidth::B8);
    b.store_global(b.add(out, 8u64), neg, MemWidth::B8);
    b.store_global(b.add(out, 16u64), fabs, MemWidth::B4);
    let k = b.finish();
    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(24);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 1u32),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    assert_eq!(mem.load(o, 8).unwrap(), u64::MAX);
    assert_eq!(mem.load(o + 8, 8).unwrap() as i64, -5);
    assert_eq!(f32::from_bits(mem.load(o + 16, 4).unwrap() as u32), 3.5);
}

#[test]
fn partial_warps_in_2d_blocks() {
    // 5x5 block = 25 threads < one warp; all valid lanes execute.
    let b = KernelBuilder::new("partial2d");
    let out = b.param(0);
    let x = b.special(SpecialReg::TidX);
    let y = b.special(SpecialReg::TidY);
    let linear = b.add(b.mul(y, 5u64), x);
    b.store_global(b.add(out, linear), 1u64, MemWidth::B1);
    let k = b.finish();
    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(32);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, (5u32, 5u32)),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    for i in 0..32u64 {
        assert_eq!(mem.load(o + i, 1).unwrap(), u64::from(i < 25), "byte {i}");
    }
}

#[test]
fn texture_fetch_clamps_to_edge() {
    use owl_gpu::build::KernelBuilder;
    let b = KernelBuilder::new("texclamp");
    let out = b.param(0);
    let tid = b.special(SpecialReg::GlobalTid);
    // Sample at x = tid - 2 (signed): lanes 0 and 1 clamp to column 0.
    let x = b.sub(tid, 2u64);
    let v = b.tex2d(0, x, 0u64);
    b.store_global(b.add(out, tid), v, MemWidth::B1);
    let k = b.finish();

    let mut mem = DeviceMemory::new();
    // 4x1 texture with distinct texels.
    mem.bind_texture(4, 1, &[10, 20, 30, 40]);
    let (_, o) = mem.alloc(32);
    launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 8u32),
        &[o],
        &mut NullHook,
    )
    .unwrap();
    let got: Vec<u64> = (0..8).map(|i| mem.load(o + i, 1).unwrap()).collect();
    // tid 0,1 → clamp left (10); tid 2..5 → 10,20,30,40; tid 6,7 → clamp right.
    assert_eq!(got, vec![10, 10, 10, 20, 30, 40, 40, 40]);
}

#[test]
fn unbound_texture_slot_faults() {
    use owl_gpu::build::KernelBuilder;
    let b = KernelBuilder::new("texmissing");
    let _ = b.tex2d(3, 0u64, 0u64);
    let k = b.finish();
    let mut mem = DeviceMemory::new();
    let err = launch(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 32u32),
        &[],
        &mut NullHook,
    )
    .unwrap_err();
    assert_eq!(err, owl_gpu::ExecError::UnboundTexture { slot: 3 });
}

#[test]
fn plain_loads_on_texture_space_rejected_at_validation() {
    use owl_gpu::isa::{Inst, InstOp, MemSpace, Operand, Reg};
    use owl_gpu::program::{BasicBlock, BlockId, KernelProgram, ProgramError, Region, Stmt};
    let k = KernelProgram {
        name: "bad".into(),
        blocks: vec![BasicBlock {
            insts: vec![Inst::new(InstOp::Ld {
                dst: Reg(0),
                space: MemSpace::Texture,
                addr: Operand::Imm(0),
                width: MemWidth::B1,
            })],
        }],
        body: Region(vec![Stmt::Block(BlockId(0))]),
        num_regs: 1,
        num_preds: 1,
        shared_mem_bytes: 0,
        local_mem_bytes: 0,
    };
    assert_eq!(k.validate(), Err(ProgramError::LdStOnTextureSpace));
}

#[test]
fn texture_fetch_events_carry_texel_indices() {
    use owl_gpu::build::KernelBuilder;
    use owl_gpu::hook::RecordingHook;
    use owl_gpu::isa::MemSpace;
    let b = KernelBuilder::new("texevent");
    let tid = b.special(SpecialReg::GlobalTid);
    let _ = b.tex2d(0, tid, 1u64);
    let k = b.finish();
    let mut mem = DeviceMemory::new();
    mem.bind_texture(8, 2, &[0; 16]);
    let mut hook = RecordingHook::default();
    launch(&mut mem, &k, LaunchConfig::new(1u32, 8u32), &[], &mut hook).unwrap();
    assert_eq!(hook.accesses.len(), 1);
    let event = &hook.accesses[0].1;
    assert_eq!(event.space, MemSpace::Texture);
    // Row 1 of an 8-wide texture: indices 8..16.
    let idxs: Vec<u64> = event.lane_addrs.iter().map(|&(_, a)| a).collect();
    assert_eq!(idxs, (8..16).collect::<Vec<u64>>());
}
