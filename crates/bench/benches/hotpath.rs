//! End-to-end throughput of the record-side hot path.
//!
//! Times the whole `detect()` pipeline — trace recording, duplicate
//! filtering, KS analysis — on the AES T-table and direct-histogram
//! workloads at `parallelism = 1`, so the numbers track the per-event
//! cost of the recording inner loop rather than fan-out scheduling.
//! Besides the criterion smoke run, the bench writes `BENCH_hotpath.json`
//! (via [`owl_bench::write_bench_json`]) with one row per workload:
//! best-of-N `detect()` wall-clock and events/sec, where an *event* is a
//! retired warp instruction or a warp-level memory access — each crosses
//! the interpreter/hook/tracer path exactly once.

use criterion::{criterion_group, criterion_main, Criterion};
use owl_bench::write_bench_json;
use owl_core::{detect, Detection, OwlConfig, TracedProgram};
use owl_workloads::aes::AesTTable;
use owl_workloads::histogram::HistogramDirect;
use std::time::{Duration, Instant};

/// Recording runs per `detect()` call; enough to exercise phases 2 and 3
/// while keeping one bench iteration under a second.
const RUNS: usize = 10;

/// Timed `detect()` calls per workload row (best-of is reported).
const ITERS: usize = 5;

fn config() -> OwlConfig {
    OwlConfig {
        runs: RUNS,
        parallelism: 1,
        // Exercise phase 3 even when filtering collapses to one class.
        force_analysis: true,
        ..OwlConfig::default()
    }
}

fn run_detect<P>(program: &P, inputs: &[P::Input]) -> Detection<P::Input>
where
    P: TracedProgram + Sync,
    P::Input: Send + Sync,
{
    detect(program, inputs, &config()).expect("detection")
}

/// One measured row of `BENCH_hotpath.json`.
#[derive(Debug, serde::Serialize)]
struct HotpathRow {
    workload: String,
    runs: usize,
    iters: usize,
    detect_ms: f64,
    events: u64,
    events_per_sec: f64,
}

fn measure<P>(name: &str, program: &P, inputs: &[P::Input]) -> HotpathRow
where
    P: TracedProgram + Sync,
    P::Input: Send + Sync,
{
    let warm = run_detect(program, inputs);
    let events = warm.counters.instructions + warm.counters.mem_accesses;
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let start = Instant::now();
        let detection = run_detect(program, inputs);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(detection.verdict, warm.verdict, "verdict must be stable");
        best = best.min(elapsed);
    }
    HotpathRow {
        workload: name.to_string(),
        runs: RUNS,
        iters: ITERS,
        detect_ms: best,
        events,
        events_per_sec: events as f64 / (best / 1e3),
    }
}

fn aes_inputs() -> (AesTTable, Vec<[u8; 16]>) {
    let aes = AesTTable::new(32);
    (aes, vec![[0u8; 16], [0xffu8; 16], *b"owl-sca-detector"])
}

fn histogram_inputs() -> (HistogramDirect, Vec<Vec<u8>>) {
    let hist = HistogramDirect::new(256);
    let inputs = (1..=3).map(|seed| hist.random_input(seed)).collect();
    (hist, inputs)
}

fn bench_detect(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(2));
    let (aes, keys) = aes_inputs();
    g.bench_function("detect-aes-ttable", |b| b.iter(|| run_detect(&aes, &keys)));
    let (hist, data) = histogram_inputs();
    g.bench_function("detect-histogram", |b| b.iter(|| run_detect(&hist, &data)));
    g.finish();
}

fn write_rows(_c: &mut Criterion) {
    let (aes, keys) = aes_inputs();
    let (hist, data) = histogram_inputs();
    let rows = vec![
        measure("aes-ttable", &aes, &keys),
        measure("histogram-direct", &hist, &data),
    ];
    let path = write_bench_json("hotpath", &rows).expect("write BENCH_hotpath.json");
    for row in &rows {
        println!(
            "hotpath/{}: detect {:.1} ms, {:.0} events/sec",
            row.workload, row.detect_ms, row.events_per_sec
        );
    }
    println!("wrote {}", path.display());
}

criterion_group!(benches, bench_detect, write_rows);
criterion_main!(benches);
