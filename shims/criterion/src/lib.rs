//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the API this workspace's benches use —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! warm_up_time, measurement_time, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId::new`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` samples inside `measurement_time`, each sample
//! timing a batch of iterations sized so one batch takes roughly
//! `measurement_time / sample_size`. Reports mean and min/max per-iteration
//! wall time to stdout. No plotting, no statistics beyond that, no saved
//! baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement marker types (only wall time is supported).

    /// Wall-clock measurement (the default and only measurement).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Opaque identity function that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark name plus a parameter, e.g. `ks/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// A bare parameter id (no function name).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Times closures handed to `bench_function` / `bench_with_input`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the requested number of iterations, timing the
    /// whole batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("\n== group {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            _criterion: PhantomData,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the routine before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Throughput is accepted and ignored (report is time-only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut |b| routine(b));
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut |b| routine(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}

    fn run_one(&self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: run single iterations until warm_up_time has passed,
        // and use the observed speed to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_elapsed = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            warm_iters += 1;
            warm_elapsed += b.elapsed;
        }
        let per_iter = warm_elapsed
            .checked_div(warm_iters as u32)
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

        let mut times = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{}/{:<40} mean {:>12}  [{} .. {}]  ({} samples x {} iters)",
            self.name,
            id,
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max),
            self.sample_size,
            iters_per_sample,
        );
    }
}

/// Accepted by [`BenchmarkGroup::throughput`]; ignored in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Groups benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` calling each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-test");
        g.sample_size(2);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(4));
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        g.bench_with_input(BenchmarkId::new("with-input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("ks", 1024).to_string(), "ks/1024");
        assert_eq!(BenchmarkId::from_parameter(5).to_string(), "5");
    }
}
