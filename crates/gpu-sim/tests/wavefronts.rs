//! SIMT-width generality: the paper's conclusion claims the approach
//! applies to "other similar SIMT architectures". These tests execute the
//! same kernels at warp widths from 4 to 64 lanes (64 = AMD-style
//! wavefronts) and check that results are width-independent while the
//! *trace shape* scales as expected.

use owl_gpu::build::KernelBuilder;
use owl_gpu::exec::{launch_with_options, LaunchOptions};
use owl_gpu::grid::LaunchConfig;
use owl_gpu::hook::{NullHook, RecordingHook};
use owl_gpu::isa::{CmpOp, MemWidth, SpecialReg};
use owl_gpu::mem::DeviceMemory;
use owl_gpu::ExecError;

fn options(warp_size: u32) -> LaunchOptions {
    LaunchOptions {
        warp_size,
        ..LaunchOptions::default()
    }
}

/// out[i] = (in[i] * 3) with a divergent halving loop — exercises masks,
/// divergence, and reconvergence at every width.
fn divergent_kernel() -> owl_gpu::KernelProgram {
    let b = KernelBuilder::new("divergent");
    let inp = b.param(0);
    let out = b.param(1);
    let n = b.param(2);
    let tid = b.special(SpecialReg::GlobalTid);
    let guard = b.setp(CmpOp::LtU, tid, n);
    b.if_then(guard, |b| {
        let v = b.load_global(b.add(inp, b.mul(tid, 8u64)), MemWidth::B8);
        let acc = b.mov(0u64);
        let x = b.mov(v);
        // Divergent loop: iterations = highest set bit position.
        b.while_loop(
            |b| b.setp(CmpOp::Ne, x, 0u64),
            |b| {
                b.assign(acc, b.add(acc, b.and(x, 1u64)));
                b.assign(x, b.shr(x, 1u64));
            },
        );
        // acc = popcount(v); out = v * 3 + popcount(v).
        let r = b.add(b.mul(v, 3u64), acc);
        b.store_global(b.add(out, b.mul(tid, 8u64)), r, MemWidth::B8);
    });
    b.finish()
}

fn run_at(warp_size: u32, inputs: &[u64]) -> Vec<u64> {
    let k = divergent_kernel();
    let mut mem = DeviceMemory::new();
    let n = inputs.len();
    let (_, a) = mem.alloc(8 * n);
    let (_, o) = mem.alloc(8 * n);
    for (i, &v) in inputs.iter().enumerate() {
        mem.store(a + 8 * i as u64, 8, v).unwrap();
    }
    launch_with_options(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, n as u32),
        &[a, o, n as u64],
        &mut NullHook,
        options(warp_size),
    )
    .unwrap();
    (0..n)
        .map(|i| mem.load(o + 8 * i as u64, 8).unwrap())
        .collect()
}

#[test]
fn results_are_warp_width_independent() {
    let inputs: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9) % 1000)
        .collect();
    let reference: Vec<u64> = inputs
        .iter()
        .map(|&v| v * 3 + u64::from(v.count_ones()))
        .collect();
    for warp_size in [4u32, 8, 16, 32, 64] {
        assert_eq!(
            run_at(warp_size, &inputs),
            reference,
            "warp size {warp_size}"
        );
    }
}

#[test]
fn warp_count_scales_inversely_with_width() {
    let k = divergent_kernel();
    let counts: Vec<u64> = [8u32, 16, 32, 64]
        .into_iter()
        .map(|ws| {
            let mut mem = DeviceMemory::new();
            let (_, a) = mem.alloc(8 * 64);
            let (_, o) = mem.alloc(8 * 64);
            let stats = launch_with_options(
                &mut mem,
                &k,
                LaunchConfig::new(1u32, 64u32),
                &[a, o, 64],
                &mut NullHook,
                options(ws),
            )
            .unwrap();
            stats.warps
        })
        .collect();
    assert_eq!(counts, vec![8, 4, 2, 1]);
}

#[test]
fn wider_warps_aggregate_more_lanes_per_event() {
    let k = divergent_kernel();
    let lanes_per_event = |ws: u32| {
        let mut mem = DeviceMemory::new();
        let (_, a) = mem.alloc(8 * 64);
        let (_, o) = mem.alloc(8 * 64);
        let mut hook = RecordingHook::default();
        launch_with_options(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 64u32),
            &[a, o, 64],
            &mut hook,
            options(ws),
        )
        .unwrap();
        hook.accesses
            .iter()
            .map(|(_, e)| e.lane_addrs.len())
            .max()
            .unwrap()
    };
    assert_eq!(lanes_per_event(16), 16);
    assert_eq!(lanes_per_event(64), 64);
}

#[test]
fn ballot_and_shuffle_work_at_wave64() {
    // Warp-sum over 64 lanes with xor-shuffles plus a 64-lane ballot.
    let b = KernelBuilder::new("wave64");
    let out = b.param(0);
    let tid = b.special(SpecialReg::GlobalTid);
    let mut v = b.mov(tid);
    for mask in [32u64, 16, 8, 4, 2, 1] {
        let peer = b.shfl_xor(v, mask);
        v = b.add(v, peer);
    }
    let p = b.setp(CmpOp::LtU, tid, 40u64);
    let ballot = b.ballot(p);
    b.store_global(b.add(out, b.mul(tid, 8u64)), v, MemWidth::B8);
    b.store_global(
        b.add(out, b.add(512u64, b.mul(tid, 8u64))),
        ballot,
        MemWidth::B8,
    );
    let k = b.finish();

    let mut mem = DeviceMemory::new();
    let (_, o) = mem.alloc(8 * 128);
    launch_with_options(
        &mut mem,
        &k,
        LaunchConfig::new(1u32, 64u32),
        &[o],
        &mut NullHook,
        options(64),
    )
    .unwrap();
    let total: u64 = (0..64).sum();
    for i in 0..64u64 {
        assert_eq!(mem.load(o + i * 8, 8).unwrap(), total, "lane {i}");
        assert_eq!(
            mem.load(o + 512 + i * 8, 8).unwrap(),
            (1u64 << 40) - 1,
            "ballot lane {i}"
        );
    }
}

#[test]
fn invalid_warp_sizes_rejected() {
    let k = divergent_kernel();
    let mut mem = DeviceMemory::new();
    let (_, a) = mem.alloc(8 * 32);
    let (_, o) = mem.alloc(8 * 32);
    for ws in [0u32, 65, 128] {
        let err = launch_with_options(
            &mut mem,
            &k,
            LaunchConfig::new(1u32, 32u32),
            &[a, o, 32],
            &mut NullHook,
            options(ws),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::InvalidWarpSize { warp_size: ws });
    }
}
