//! Prior-work comparators for the Owl evaluation (RQ2/RQ3).
//!
//! * [`per_thread`] — a DATA-style per-thread tracer whose memory grows
//!   with the thread count, against Owl's warp-aggregated A-DCFGs.
//! * [`host_only`] — DATA as it would actually run on a CUDA application
//!   (Pin on the host): sees kernel leaks, blind to device leaks.
//! * [`static_ir`] — a naive static taint analysis over the kernel IR,
//!   reproducing the haybale-pitchfork false-positive mechanisms (thread-
//!   id-indexed accesses, no predication model).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host_only;
pub mod per_thread;
pub mod static_ir;

pub use host_only::{host_only_detect, HostOnlyReport};
pub use per_thread::{per_thread_diff, record_per_thread, PerThreadDiff, PerThreadTracer};
pub use static_ir::{analyze_kernel, FindingKind, StaticFinding, StaticReport};
