//! The Owl detector: the three phases end to end.

use crate::analysis::{leakage_test, AnalysisConfig, TestMethod};
use crate::error::DetectError;
use crate::evidence::Evidence;
use crate::filter::{filter_traces, FilterOutcome};
use crate::parallel::parallel_map;
use crate::program::TracedProgram;
use crate::record::{record_run_metered, RunSpec};
use crate::report::LeakReport;
use owl_metrics::{SimCounters, Spans};
use std::time::{Duration, Instant};

/// Recording stream of the phase-1 user-input recordings.
const STREAM_USER: u64 = 0;
/// Recording stream of the shared random evidence `E_rnd`.
const STREAM_RND: u64 = 1;
/// Recording stream of input class `class`'s fixed evidence `E_fix`.
fn fix_stream(class: usize) -> u64 {
    2 + class as u64
}

/// Runs per evidence work item: the recording fan-out granularity. Chunk
/// boundaries depend only on the run count — never on the worker count —
/// so the partial-evidence merge tree, and therefore the merged evidence,
/// is bit-identical for every `parallelism` setting.
const EVIDENCE_CHUNK: usize = 8;

/// Detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OwlConfig {
    /// Executions per evidence side (the paper uses 100 fixed + 100
    /// random).
    pub runs: usize,
    /// KS confidence level (the paper uses 0.95).
    pub alpha: f64,
    /// Base seed for drawing random inputs (reproducibility).
    pub seed: u64,
    /// Run the leakage analysis even when filtering found a single input
    /// class (the paper would stop and declare the program leak-free).
    pub force_analysis: bool,
    /// The distribution test (KS unless running the Welch ablation).
    pub method: TestMethod,
    /// SIMT warp width used for every recorded execution (32 = NVIDIA
    /// warps, 64 = AMD-style wavefronts).
    pub warp_size: u32,
    /// When set, every recording runs on a device with simulated ASLR
    /// derived from this seed (a *different* layout per run), exercising
    /// the tracer's address normalisation end to end. Each run's layout is
    /// a pure function of `(aslr_seed, stream, run_index)`, never of
    /// recording order.
    pub aslr_seed: Option<u64>,
    /// Worker threads for the recording and analysis fan-out. Defaults to
    /// the number of available cores; `1` keeps everything inline on the
    /// calling thread. Results are bit-identical for every value — the
    /// evidence merge tree depends only on the run count.
    pub parallelism: usize,
}

impl Default for OwlConfig {
    fn default() -> Self {
        OwlConfig {
            runs: 100,
            alpha: 0.95,
            seed: 0x0071_5eed,
            force_analysis: false,
            method: TestMethod::Ks,
            warp_size: owl_gpu::grid::WARP_SIZE,
            aslr_seed: None,
            parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

impl OwlConfig {
    /// A fluent builder over the defaults:
    /// `OwlConfig::builder().runs(40).aslr_seed(7).build()`. Struct-literal
    /// construction via [`Default`] keeps working.
    pub fn builder() -> OwlConfigBuilder {
        OwlConfigBuilder::default()
    }
}

/// Builder for [`OwlConfig`]; every setter has the same name and meaning as
/// the corresponding config field.
#[derive(Debug, Clone, Default)]
pub struct OwlConfigBuilder {
    config: OwlConfig,
}

impl OwlConfigBuilder {
    /// Executions per evidence side.
    pub fn runs(mut self, runs: usize) -> Self {
        self.config.runs = runs;
        self
    }

    /// KS confidence level.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.config.alpha = alpha;
        self
    }

    /// Base seed for drawing random inputs.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Run the leakage analysis even for a single input class.
    pub fn force_analysis(mut self, force: bool) -> Self {
        self.config.force_analysis = force;
        self
    }

    /// The distribution test to use.
    pub fn method(mut self, method: TestMethod) -> Self {
        self.config.method = method;
        self
    }

    /// SIMT warp width for every recorded execution.
    pub fn warp_size(mut self, warp_size: u32) -> Self {
        self.config.warp_size = warp_size;
        self
    }

    /// Enables simulated ASLR derived from this seed.
    pub fn aslr_seed(mut self, seed: u64) -> Self {
        self.config.aslr_seed = Some(seed);
        self
    }

    /// Worker threads for the recording and analysis fan-out.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.config.parallelism = workers;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> OwlConfig {
        self.config
    }
}

/// Cost accounting for one detection, mirroring the columns of the paper's
/// Table IV.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStats {
    /// Wall time of the trace-recording phase (filtering inputs).
    pub trace_collection_time: Duration,
    /// Mean bytes per recorded trace.
    pub trace_bytes: usize,
    /// Number of traces recorded for evidence (fixed + random).
    pub evidence_traces: usize,
    /// Wall time to record + merge the evidence.
    pub evidence_time: Duration,
    /// Sum of the per-worker recording time of the evidence phase. The
    /// ratio `evidence_cpu_time / evidence_time` is the observed parallel
    /// speedup (≈ 1 when `parallelism = 1`).
    pub evidence_cpu_time: Duration,
    /// Worker threads actually used by the evidence phase (`parallelism`
    /// clamped to the number of work items).
    pub evidence_workers: usize,
    /// Wall time of the distribution tests.
    pub test_time: Duration,
    /// Peak resident trace size proxy: the largest evidence footprint held
    /// at once, in bytes.
    pub peak_evidence_bytes: usize,
    /// Total wall time of the detection.
    pub total_time: Duration,
}

/// The detector's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All user inputs produced identical traces (§VI: leak-free).
    LeakFree,
    /// Differences existed but none survived the distribution tests: they
    /// are attributed to non-deterministic execution noise.
    NoInputDependence,
    /// Input-dependent leaks were found.
    Leaky,
}

/// The complete result of one detection.
#[derive(Debug, Clone)]
pub struct Detection<I> {
    /// The input classes from the duplicates-removing phase.
    pub filter: FilterOutcome<I>,
    /// The merged leak report over all classes.
    pub report: LeakReport,
    /// The verdict.
    pub verdict: Verdict,
    /// Cost accounting.
    pub stats: PhaseStats,
    /// Simulator execution counters totalled over every recorded run
    /// (phase 1 and evidence alike). Deterministic: bit-identical for every
    /// `parallelism` setting, like the report itself.
    pub counters: SimCounters,
    /// Wall-clock spans of the detector phases, in phase order.
    /// Non-deterministic by nature — excluded from any reproducible output.
    pub spans: Spans,
}

/// One evidence-phase work item: a contiguous chunk of run indices for one
/// recording stream (the shared `E_rnd` or one class's `E_fix`).
struct EvidenceItem {
    /// `None` = random evidence, `Some(c)` = class `c`'s fixed evidence.
    class: Option<usize>,
    /// The stream the runs belong to.
    stream: u64,
    /// First run index of the chunk.
    start: usize,
    /// One past the last run index of the chunk.
    end: usize,
}

/// Runs the full Owl pipeline on `program` with the given user inputs.
///
/// Phase 1 records one trace per user input; phase 2 groups them into
/// classes (identical traces ⇒ same class); phase 3, for each class
/// representative, merges `runs` fixed-input executions into `E_fix`,
/// merges `runs` random-input executions into a shared `E_rnd`, and runs
/// the leak tests. Reports of all classes are merged, deduplicated by code
/// location.
///
/// Recording and analysis fan out across [`OwlConfig::parallelism`] worker
/// threads. Every recording is a pure function of its `(stream, run_index)`
/// identity (see [`RunSpec`]), chunk boundaries depend only on the run
/// count, and partial evidences merge in chunk order — so the returned
/// report, verdict and evidence are bit-identical for every `parallelism`
/// value. Each worker owns its simulated device and tracer end to end
/// (they are deliberately not thread-safe); only the finished, plain-data
/// traces cross threads.
///
/// # Errors
///
/// Returns [`DetectError::NoInputs`] when `user_inputs` is empty, or any
/// error from the program under test (the first error in run order, for
/// determinism).
///
/// # Example
///
/// See the crate-level documentation.
pub fn detect<P>(
    program: &P,
    user_inputs: &[P::Input],
    config: &OwlConfig,
) -> Result<Detection<P::Input>, DetectError>
where
    P: TracedProgram + Sync,
    P::Input: Send + Sync,
{
    if user_inputs.is_empty() {
        return Err(DetectError::NoInputs);
    }
    let workers = config.parallelism.max(1);
    let spec = |stream, run_index| RunSpec {
        warp_size: config.warp_size,
        aslr_seed: config.aslr_seed,
        stream,
        run_index: run_index as u64,
    };
    let t_total = Instant::now();
    let mut spans = Spans::new();
    let mut counters = SimCounters::default();

    // Phase 1 + 2: record one trace per user input (fanned out, collected
    // in input order) and filter into classes. Counters merge in input
    // order; u64 addition commutes, so the totals match the serial run.
    let t0 = Instant::now();
    let recorded = parallel_map(workers, user_inputs.len(), |i| {
        record_run_metered(program, &user_inputs[i], &spec(STREAM_USER, i))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let mut traces = Vec::with_capacity(recorded.len());
    for (trace, run_counters) in recorded {
        counters.merge(&run_counters);
        traces.push(trace);
    }
    let trace_bytes = traces.iter().map(|t| t.size_bytes()).sum::<usize>() / traces.len().max(1);
    let filter = filter_traces(user_inputs, traces);
    let trace_collection_time = t0.elapsed();
    spans.record("trace_collection", trace_collection_time);

    if filter.single_class() && !config.force_analysis {
        return Ok(Detection {
            filter,
            report: LeakReport::default(),
            verdict: Verdict::LeakFree,
            stats: PhaseStats {
                trace_collection_time,
                trace_bytes,
                total_time: t_total.elapsed(),
                ..Default::default()
            },
            counters,
            spans,
        });
    }

    // Phase 3: evidence. One work item per run chunk, for the shared
    // random evidence and every class's fixed evidence alike; workers fold
    // their chunk into a partial [`Evidence`], and the partials merge in
    // chunk order below.
    let t1 = Instant::now();
    let mut items = Vec::new();
    for class in std::iter::once(None).chain((0..filter.classes.len()).map(Some)) {
        let stream = match class {
            None => STREAM_RND,
            Some(c) => fix_stream(c),
        };
        let mut start = 0;
        while start < config.runs {
            let end = (start + EVIDENCE_CHUNK).min(config.runs);
            items.push(EvidenceItem {
                class,
                stream,
                start,
                end,
            });
            start = end;
        }
    }
    let evidence_workers = workers.min(items.len()).max(1);
    let partials = parallel_map(workers, items.len(), |i| {
        let item = &items[i];
        let t = Instant::now();
        let mut partial = Evidence::default();
        let mut chunk_counters = SimCounters::default();
        let outcome = (|| -> Result<(), DetectError> {
            // With ASLR off and a host audited pure (`deterministic_host`),
            // a fixed-class run is a pure function of `(program, input)` —
            // `run_index` only feeds the layout seed — so every run of this
            // item produces a bit-identical trace and counters. Record once
            // and replicate exactly instead of re-recording `n` identical
            // runs. Impure hosts (e.g. a per-run nonce) must keep
            // re-recording: their fixed-run noise has to reach the evidence
            // so the differential test can dismiss it.
            if let (Some(c), None, true) =
                (item.class, config.aslr_seed, program.deterministic_host())
            {
                let n = (item.end - item.start) as u64;
                let input = &filter.classes[c].representative;
                let (trace, run_counters) =
                    record_run_metered(program, input, &spec(item.stream, item.start))?;
                for _ in 0..n {
                    chunk_counters.merge(&run_counters);
                }
                partial.merge_trace_repeated(trace, n);
                return Ok(());
            }
            for run in item.start..item.end {
                let random_input;
                let input = match item.class {
                    None => {
                        random_input = program.random_input(config.seed.wrapping_add(run as u64));
                        &random_input
                    }
                    Some(c) => &filter.classes[c].representative,
                };
                let (trace, run_counters) =
                    record_run_metered(program, input, &spec(item.stream, run))?;
                chunk_counters.merge(&run_counters);
                partial.merge_trace(trace);
            }
            Ok(())
        })();
        (outcome.map(|()| (partial, chunk_counters)), t.elapsed())
    });
    let evidence_cpu_time = partials.iter().map(|(_, elapsed)| *elapsed).sum();
    let mut rnd = Evidence::default();
    let mut fixes = vec![Evidence::default(); filter.classes.len()];
    for (item, (result, _)) in items.iter().zip(partials) {
        let (partial, chunk_counters) = result?;
        counters.merge(&chunk_counters);
        match item.class {
            None => rnd.merge(partial),
            Some(c) => fixes[c].merge(partial),
        }
    }
    let evidence_time = t1.elapsed();
    spans.record("evidence", evidence_time);
    let peak_evidence_bytes =
        rnd.size_bytes() + fixes.iter().map(Evidence::size_bytes).max().unwrap_or(0);

    // Distribution tests: one per class, fanned out, merged in class order.
    let t2 = Instant::now();
    let analysis_config = AnalysisConfig {
        alpha: config.alpha,
        method: config.method,
    };
    let class_reports = parallel_map(workers, fixes.len(), |c| {
        leakage_test(&fixes[c], &rnd, &analysis_config)
    });
    let mut report = LeakReport::default();
    for class_report in &class_reports {
        report.merge(class_report);
    }
    let test_time = t2.elapsed();
    spans.record("analysis", test_time);

    let verdict = if report.is_clean() {
        Verdict::NoInputDependence
    } else {
        Verdict::Leaky
    };
    Ok(Detection {
        stats: PhaseStats {
            trace_collection_time,
            trace_bytes,
            evidence_traces: config.runs * (1 + filter.classes.len()),
            evidence_time,
            evidence_cpu_time,
            evidence_workers,
            test_time,
            peak_evidence_bytes,
            total_time: t_total.elapsed(),
        },
        filter,
        report,
        verdict,
        counters,
        spans,
    })
}
