//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small API subset it actually uses: [`RngCore`], [`SeedableRng`] (with
//! the SplitMix64-based `seed_from_u64` expansion rand_core documents), and
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`).
//!
//! The generators themselves live in the sibling `rand_chacha` shim; this
//! crate only defines traits and distribution plumbing. Streams are **not**
//! bit-compatible with the real `rand` crate — everything in this repository
//! only relies on determinism, not on specific values.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type (e.g. `[u8; 32]` for ChaCha).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same scheme
    /// `rand_core` documents) and builds the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types drawable uniformly from their full value range via [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Maps 64 random bits onto the unit interval `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a sub-range via [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w + i128::from(inclusive)) as u128;
                assert!(span > 0, "gen_range: empty range");
                // Modulo bias is irrelevant for this repository's uses
                // (simulation inputs, not cryptography).
                let draw = u128::from(rng.next_u64()) % span;
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * (unit_f64(rng.next_u64()) as f32)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's full range.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty or unbounded.
    fn gen_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(_) | Bound::Unbounded => {
                panic!("gen_range: range must have an included start")
            }
        };
        let (hi, inclusive) = match range.end_bound() {
            Bound::Included(&v) => (v, true),
            Bound::Excluded(&v) => (v, false),
            Bound::Unbounded => panic!("gen_range: range must be bounded"),
        };
        T::sample_range(self, lo, hi, inclusive)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics when `denominator == 0` or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(
            numerator <= denominator,
            "gen_ratio: numerator exceeds denominator"
        );
        self.gen_range(0..denominator) < numerator
    }

    /// Fills `dest` with random bytes (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` namespace for API compatibility.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64 core), mirroring
    /// the role of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = r.gen_range(-2..=2);
            assert!((-2..=2).contains(&w));
            let f: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
