//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: [`ChaCha8Rng`], a genuine 8-round ChaCha keystream generator
//! implementing the `rand` shim's `RngCore`/`SeedableRng`.
//!
//! The keystream is a faithful ChaCha8 (RFC 7539 block function with 8
//! rounds), but the *word-extraction order* is not guaranteed to match the
//! real `rand_chacha` crate; this repository only relies on seeded
//! determinism, never on specific stream values.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic, seedable ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and constants/counter/nonce around them.
    state: [u32; BLOCK_WORDS],
    /// Current output block.
    block: [u32; BLOCK_WORDS],
    /// Next word to hand out from `block`; `BLOCK_WORDS` forces a refill.
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12-13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    /// The word stream position, exposed for tests.
    pub fn word_pos(&self) -> u128 {
        let counter = u128::from(self.state[13]) << 32 | u128::from(self.state[12]);
        counter * BLOCK_WORDS as u128 + self.cursor as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // counter = 0 (words 12-13), nonce = 0 (words 14-15).
        let mut rng = ChaCha8Rng {
            state,
            block: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_is_reasonably_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones();
        }
        // 64k bits, expect ~32k ones.
        assert!((30_000..34_000).contains(&ones), "{ones}");
    }

    #[test]
    fn clone_continues_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _: u64 = a.gen();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
