//! Cooperative cancellation for launches.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a caller
//! and any number of in-flight launches. The caller flips it with
//! [`CancelToken::cancel`] (or arms a wall-clock deadline); both
//! interpreters poll it at basic-block boundaries and abandon the launch
//! with [`ExecError::Cancelled`](crate::error::ExecError::Cancelled) when
//! it fires. Cancellation is *cooperative* and *whole-launch*: a launch
//! either completes untouched or errors out entirely, so partial results
//! never leak into downstream consumers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation handle: an atomic flag plus an optional
/// wall-clock deadline.
///
/// Clones share the flag — cancelling any clone cancels them all — while
/// each clone carries its own (possibly tightened) deadline. Two tokens
/// compare equal when they share the flag *and* the deadline, so a cloned
/// token still equals its original.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// Requests cancellation on this token and every clone sharing its
    /// flag. Idempotent.
    pub fn cancel(&self) {
        // Relaxed suffices: the flag carries no data dependency — pollers
        // only branch on it, and "slightly late" observation is inherent
        // to cooperative cancellation anyway.
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has fired: explicitly cancelled, or past its
    /// deadline. Polling is cheap (one atomic load; one clock read only
    /// when a deadline is armed).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// A clone of this token that additionally fires at `deadline`
    /// (keeping the earlier deadline when one is already armed). The flag
    /// stays shared, so cancelling either token cancels both.
    #[must_use]
    pub fn with_deadline(&self, deadline: Instant) -> Self {
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(match self.deadline {
                Some(existing) => existing.min(deadline),
                None => deadline,
            }),
        }
    }

    /// [`with_deadline`](Self::with_deadline), measured from now. A
    /// `timeout` too large to represent leaves the deadline unchanged
    /// (it could never fire within the process lifetime anyway).
    #[must_use]
    pub fn deadline_in(&self, timeout: Duration) -> Self {
        match Instant::now().checked_add(timeout) {
            Some(deadline) => self.with_deadline(deadline),
            None => self.clone(),
        }
    }

    /// The armed deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag) && self.deadline == other.deadline
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_fires_every_clone() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn elapsed_deadline_fires_without_cancel() {
        let token = CancelToken::new().deadline_in(Duration::ZERO);
        assert!(token.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let token = CancelToken::new().deadline_in(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
    }

    #[test]
    fn tightening_keeps_the_earlier_deadline() {
        let near = Instant::now();
        let token = CancelToken::new()
            .with_deadline(near)
            .deadline_in(Duration::from_secs(3600));
        assert_eq!(token.deadline(), Some(near), "earlier deadline wins");
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_clone_shares_the_flag() {
        let token = CancelToken::new();
        let bounded = token.deadline_in(Duration::from_secs(3600));
        token.cancel();
        assert!(bounded.is_cancelled());
    }

    #[test]
    fn equality_is_shared_flag_plus_deadline() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, CancelToken::new(), "distinct flags differ");
        assert_ne!(a, a.deadline_in(Duration::from_secs(1)));
    }
}
