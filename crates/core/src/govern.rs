//! Resource governance: deterministic budgets and wall-clock deadlines
//! for detections.
//!
//! A [`ResourceBudget`] bounds what one `detect()` call may consume along
//! four axes — instructions per launch (the gpu-sim fuel budget surfaced
//! through the detector API), memory events and allocations per run,
//! evidence bytes per detection — plus a wall-clock deadline. The first
//! three are *deterministic*: whether they fire is a pure function of
//! `(program, inputs, config)`, so budget-exhausted detections keep the
//! parallelism byte-identity contract. The deadline is inherently
//! wall-clock and only ever cancels *whole* runs (a run either completes
//! untouched or is quarantined entirely), so the surviving evidence stays
//! deterministic even when the set of cancelled runs is not.
//!
//! Exhaustion never aborts a detection: it surfaces as typed faults
//! ([`DetectError::BudgetExhausted`], [`DetectError::Cancelled`]) that
//! flow through the same retry/quarantine machinery as execution faults,
//! degrading the verdict to `Inconclusive` when too much was lost — never
//! a silent clean result.

use crate::error::DetectError;
use std::time::Duration;

pub use owl_gpu::cancel::CancelToken;

/// The resource a budget bounds (and names in exhaustion faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// Per-launch instruction budget (the simulator's fuel).
    Instructions,
    /// Per-run memory-access events.
    MemEvents,
    /// Per-run device allocations.
    Allocations,
    /// Per-detection merged evidence footprint in bytes.
    EvidenceBytes,
    /// The wall-clock deadline of the whole detection.
    Deadline,
}

impl ResourceKind {
    /// Stable snake_case name, used in error messages and serialized
    /// fault records.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ResourceKind::Instructions => "instructions",
            ResourceKind::MemEvents => "mem_events",
            ResourceKind::Allocations => "allocations",
            ResourceKind::EvidenceBytes => "evidence_bytes",
            ResourceKind::Deadline => "deadline",
        }
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Resource bounds for one detection. See the [module docs](self) for the
/// determinism split between the first three budgets and the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Instruction budget per kernel launch (the simulator fuel). Always
    /// finite — the default is gpu-sim's generous
    /// [`DEFAULT_FUEL`](owl_gpu::exec::DEFAULT_FUEL) runaway guard.
    pub max_instructions: u64,
    /// Memory-access events one recorded run may produce (`None` =
    /// unbounded). Checked after the run completes; each launch is already
    /// bounded by `max_instructions`, so the check itself is bounded.
    pub max_mem_events: Option<u64>,
    /// Device allocations one recorded run may perform (`None` =
    /// unbounded).
    pub max_allocations: Option<u64>,
    /// Total merged evidence footprint one detection may hold, in bytes
    /// (`None` = unbounded). Checked deterministically after the chunk
    /// merge, on the main thread.
    pub max_evidence_bytes: Option<usize>,
    /// Wall-clock deadline for the whole detection (`None` = unbounded).
    /// When it expires, in-flight and queued runs are cancelled *whole*
    /// and quarantined; completed evidence is kept and quorum-evaluated.
    pub deadline: Option<Duration>,
}

impl ResourceBudget {
    /// The default budget as a `const` (usable in statics): default fuel,
    /// everything else unbounded.
    pub const DEFAULT: ResourceBudget = ResourceBudget {
        max_instructions: owl_gpu::exec::DEFAULT_FUEL,
        max_mem_events: None,
        max_allocations: None,
        max_evidence_bytes: None,
        deadline: None,
    };

    /// Checks one completed run against the per-run budgets.
    ///
    /// # Errors
    ///
    /// [`DetectError::BudgetExhausted`] naming the first exceeded
    /// resource.
    pub fn check_run(&self, mem_events: u64, allocations: u64) -> Result<(), DetectError> {
        if let Some(limit) = self.max_mem_events {
            if mem_events > limit {
                return Err(DetectError::BudgetExhausted {
                    resource: ResourceKind::MemEvents,
                    used: mem_events,
                    limit,
                });
            }
        }
        if let Some(limit) = self.max_allocations {
            if allocations > limit {
                return Err(DetectError::BudgetExhausted {
                    resource: ResourceKind::Allocations,
                    used: allocations,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Checks the merged evidence footprint against
    /// [`max_evidence_bytes`](Self::max_evidence_bytes).
    ///
    /// # Errors
    ///
    /// [`DetectError::BudgetExhausted`] for [`ResourceKind::EvidenceBytes`].
    pub fn check_evidence(&self, bytes: usize) -> Result<(), DetectError> {
        if let Some(limit) = self.max_evidence_bytes {
            if bytes > limit {
                return Err(DetectError::BudgetExhausted {
                    resource: ResourceKind::EvidenceBytes,
                    used: bytes as u64,
                    limit: limit as u64,
                });
            }
        }
        Ok(())
    }
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget::DEFAULT
    }
}

/// Everything a governed recording needs: the budgets plus the (optional)
/// cancellation token. Cheap to copy into worker closures.
#[derive(Debug, Clone, Copy)]
pub struct RunGovernor<'a> {
    /// The detection's resource budget.
    pub budget: &'a ResourceBudget,
    /// The detection's effective cancellation token (caller token,
    /// deadline token, or both), `None` when ungoverned.
    pub cancel: Option<&'a CancelToken>,
}

impl RunGovernor<'static> {
    /// The ungoverned default: default budget, no cancellation.
    #[must_use]
    pub fn unbounded() -> Self {
        RunGovernor {
            budget: &ResourceBudget::DEFAULT,
            cancel: None,
        }
    }
}

impl RunGovernor<'_> {
    /// Whether the governed detection has been cancelled (explicitly or by
    /// deadline). `false` when no token is armed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_fuel_only() {
        let budget = ResourceBudget::default();
        assert_eq!(budget.max_instructions, owl_gpu::exec::DEFAULT_FUEL);
        assert_eq!(budget.max_mem_events, None);
        assert_eq!(budget.max_allocations, None);
        assert_eq!(budget.max_evidence_bytes, None);
        assert_eq!(budget.deadline, None);
    }

    #[test]
    fn check_run_flags_the_first_exceeded_resource() {
        let budget = ResourceBudget {
            max_mem_events: Some(10),
            max_allocations: Some(2),
            ..ResourceBudget::default()
        };
        assert!(budget.check_run(10, 2).is_ok(), "limits are inclusive");
        match budget.check_run(11, 0) {
            Err(DetectError::BudgetExhausted {
                resource: ResourceKind::MemEvents,
                used: 11,
                limit: 10,
            }) => {}
            other => panic!("expected mem-event exhaustion, got {other:?}"),
        }
        match budget.check_run(0, 3) {
            Err(DetectError::BudgetExhausted {
                resource: ResourceKind::Allocations,
                used: 3,
                limit: 2,
            }) => {}
            other => panic!("expected allocation exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn check_evidence_compares_bytes() {
        let budget = ResourceBudget {
            max_evidence_bytes: Some(100),
            ..ResourceBudget::default()
        };
        assert!(budget.check_evidence(100).is_ok());
        match budget.check_evidence(101) {
            Err(DetectError::BudgetExhausted {
                resource: ResourceKind::EvidenceBytes,
                used: 101,
                limit: 100,
            }) => {}
            other => panic!("expected evidence exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_governor_never_cancels() {
        assert!(!RunGovernor::unbounded().is_cancelled());
    }
}
