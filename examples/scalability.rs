//! Scalability comparison (the RQ2 story): Owl's warp-aggregated traces
//! versus DATA-style per-thread traces as the thread count grows.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use owl::baselines::record_per_thread;
use owl::core::record_trace;
use owl::workloads::dummy::DummySbox;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>10} {:>16} {:>18} {:>8}",
        "threads", "owl trace (B)", "per-thread (B)", "ratio"
    );
    for elems in [64usize, 256, 1024, 4096, 16384, 65536] {
        let program = DummySbox::new(elems);
        let secret = 0x5eed_u64;
        let owl_bytes = record_trace(&program, &secret)?.size_bytes();
        let data_bytes = record_per_thread(&program, &secret)?.size_bytes();
        println!(
            "{elems:>10} {owl_bytes:>16} {data_bytes:>18} {:>8.1}x",
            data_bytes as f64 / owl_bytes as f64
        );
    }
    println!();
    println!(
        "Owl's trace saturates once every table line has been touched (the\n\
         paper's Fig. 5 plateau); per-thread recording grows without bound."
    );
    Ok(())
}
